//! The event loop tying links, flows, logic and monitors together.

use sim_core::event::{EventQueue, QueueBackend};
use sim_core::time::{SimDuration, SimTime};

use crate::churn::ChurnState;
use crate::fault::FaultState;
use crate::flow::FlowInfo;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::link::Link;
use crate::logic::{Action, ActionBuf, ControlMsg, Ctx, DropReason, RouterLogic, TimerKind};
use crate::monitor::{FlowMonitor, FlowReport, LinkReport, SimReport};
use crate::packet::Packet;
use crate::telemetry::Probe;
use crate::trace::{FaultKind, TraceEvent, Tracer};

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// How link serializations are turned into queue events.
///
/// Both modes produce byte-identical reports, traces and telemetry (see
/// `tests/train_batching.rs`): departure times are computed at enqueue
/// either way, so the per-packet checkpoints of [`PerPacket`] only add
/// no-op sync work.
///
/// [`PerPacket`]: DispatchMode::PerPacket
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Coalesce back-to-back serializations into a train: a packet's
    /// delivery event is scheduled directly at `departure + propagation`
    /// and link accounting is synced lazily (the default).
    #[default]
    Train,
    /// Additionally schedule one `TxDone` checkpoint per packet at its
    /// departure instant — the pre-train engine's event shape — kept for
    /// differential testing of the batching path.
    PerPacket,
}

/// Canonical causal keys: every event is pushed under a key
/// `(site + 1) << KEY_SITE_SHIFT | per-site counter`, where the *site* is
/// the stable identity of the pushing code path — [`SITE_GLOBAL`] for
/// pushes every shard replicates identically (initial schedules, churn
/// arrivals, lifecycle deferrals), or `node.index() + 1` for pushes made
/// while executing that node. Same-time events pop in ascending key
/// order, so the total event order is a pure function of the topology and
/// seed — *not* of which queue (serial, or one per shard) the events
/// happened to traverse. That is the whole byte-identity argument: the
/// serial engine and every shard assign the same key to the same logical
/// event, so any schedule that respects `(time, key)` produces the same
/// execution. Keys below `1 << KEY_SITE_SHIFT` never collide with event
/// keys and are reserved for the `on_start` sweep's pseudo-cursor (one
/// per node, in node order, before all real events).
pub(crate) const KEY_SITE_SHIFT: u32 = 40;

/// The pseudo-site for pushes that are replicated on every shard.
pub(crate) const SITE_GLOBAL: u64 = 0;

#[inline]
fn node_site(node: NodeId) -> u64 {
    node.index() as u64 + 1
}

/// Cursor published to capture probes/tracers: the `(time, key)` of the
/// event (or `on_start` sweep step) currently being dispatched.
pub(crate) type EventCursor = Rc<Cell<(SimTime, u64)>>;

/// A cross-shard event en route: `(destination shard, time, key, event)`.
pub(crate) type OutboundEvent = (u32, SimTime, u64, Event);

/// Which slice of the topology this `Network` instance executes.
pub(crate) enum ExecRole {
    /// The serial engine: every node is local.
    Whole,
    /// One shard of a partitioned run (see [`crate::shard`]).
    Shard(ShardView),
}

/// A shard worker's view of the partition.
pub(crate) struct ShardView {
    /// `shard_of_node[n]` is the shard that owns node `n`.
    pub shard_of_node: Vec<u32>,
    /// This worker's shard id.
    pub me: u32,
    /// Minimum propagation delay over cut links: events emitted for a
    /// remote node are promised to fire at least this far in the future.
    pub lookahead: Option<SimDuration>,
}

#[derive(Debug)]
pub(crate) enum Event {
    /// `packet` arrives at `node` (after serialization and propagation).
    Arrive { node: NodeId, packet: Packet },
    /// Per-packet sync checkpoint on `link` ([`DispatchMode::PerPacket`]
    /// only).
    TxDone { link: LinkId },
    /// A logic-scheduled timer on `node` expired.
    Timer { node: NodeId, timer: TimerKind },
    /// A control message reaches `node`.
    Control { node: NodeId, msg: ControlMsg },
    /// `flow` becomes active (delivered to its ingress logic).
    FlowStart { flow: FlowId },
    /// `flow` stops (delivered to its ingress logic).
    FlowStop { flow: FlowId },
    /// The churn process creates its next flow.
    ChurnArrival,
    /// A churn flow's drain period ended; recycle its table slot.
    ChurnRetire { flow: FlowId },
}

struct NodeSlot {
    name: String,
    logic: Option<Box<dyn RouterLogic>>,
}

/// A runnable simulated network; construct one with
/// [`TopologyBuilder`](crate::topology::TopologyBuilder).
pub struct Network {
    now: SimTime,
    /// Pending events, stored with their canonical key so capture hooks
    /// can observe it at pop time; same-time ties pop in key order.
    queue: EventQueue<(u64, Event)>,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
    flows: Vec<FlowInfo>,
    reverse_delays: Vec<Vec<SimDuration>>,
    monitors: Vec<FlowMonitor>,
    /// Per-flow go-back-N receiver state: the next in-order sequence
    /// number expected at the egress. Only consulted for packets carrying
    /// [`SeqInfo`](crate::packet::SeqInfo); open-loop flows never touch
    /// it. Reset alongside the lifecycle bookkeeping (on every shard, so
    /// the egress owner always sees a fresh counter).
    rx_next: Vec<u64>,
    /// Which activation window slot `i`'s flow last received an
    /// `on_flow_start` for, with no `on_flow_stop` delivered since
    /// (`None` when the slot is stopped). A second start for the *same*
    /// window (two pause-deferred starts colliding) is stale and
    /// discarded; a start for a *later* window is legitimate even if the
    /// previous window's stop was swallowed by a pause. A stop with no
    /// live start is stale.
    lifecycle_started: Vec<Option<u32>>,
    /// Per-node packet id counters; ids are node-packed (see
    /// [`PacketId::for_node`](crate::ids::PacketId::for_node)) so every
    /// shard mints the same id for the same packet without coordination.
    packet_counters: Vec<u64>,
    /// Per-site push counters backing the canonical keys: index 0 is
    /// [`SITE_GLOBAL`], node `n` lives at `n + 1`.
    site_counters: Vec<u64>,
    /// Serial engine or one shard of a partitioned run.
    role: ExecRole,
    /// Events addressed to nodes another shard owns, awaiting the next
    /// barrier exchange (empty under [`ExecRole::Whole`]).
    outbox: Vec<OutboundEvent>,
    /// When capture hooks are installed, the `(time, key)` of the event
    /// being dispatched (shard workers use it to tag probe/trace records
    /// for the deterministic merge).
    cursor: Option<EventCursor>,
    /// The canonical key of the event currently being dispatched (churn
    /// retirement logs it to order deferred completion records).
    current_key: u64,
    notify_losses: bool,
    started: bool,
    tracer: Option<Rc<RefCell<dyn Tracer>>>,
    probe: Option<Rc<RefCell<dyn Probe>>>,
    faults: Option<FaultState>,
    churn: Option<ChurnState>,
    /// Measurement window, kept for monitors created at runtime by churn
    /// arrivals.
    window: SimDuration,
    /// Events addressed to a recycled slot's previous occupant (stale
    /// packets, control messages, or flow lifecycle events) that the
    /// dispatcher discarded.
    stale_events: u64,
    dispatch: DispatchMode,
    /// Logical events dispatched, excluding `TxDone` checkpoints (which
    /// exist only under [`DispatchMode::PerPacket`]). Reported as
    /// `events_processed` together with the per-link forwarded counts, so
    /// the total is identical across dispatch modes — and identical to
    /// the event count of the pre-train engine, which popped one `TxDone`
    /// per forwarded packet.
    logical_events: u64,
    /// Reusable action buffer threaded through every logic callback;
    /// drained and reset after each event so steady-state dispatch never
    /// allocates.
    scratch: ActionBuf,
    /// `outgoing_by_node[n]` lists node `n`'s outgoing links in creation
    /// order (precomputed for `Ctx::outgoing_links`).
    outgoing_by_node: Vec<Vec<LinkId>>,
}

impl Network {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        names: Vec<String>,
        logics: Vec<Box<dyn RouterLogic>>,
        links: Vec<Link>,
        flows: Vec<FlowInfo>,
        reverse_delays: Vec<Vec<SimDuration>>,
        window: SimDuration,
        notify_losses: bool,
        tracer: Option<Rc<RefCell<dyn Tracer>>>,
        probe: Option<Rc<RefCell<dyn Probe>>>,
        faults: Option<FaultState>,
        churn: Option<ChurnState>,
        queue_backend: QueueBackend,
        dispatch: DispatchMode,
        role: ExecRole,
    ) -> Self {
        let queue = EventQueue::with_backend(queue_backend, 1024);
        let monitors = flows
            .iter()
            .map(|_| FlowMonitor::new(SimTime::ZERO, window))
            .collect();
        let lifecycle_started = vec![None; flows.len()];
        let rx_next = vec![0; flows.len()];
        let mut outgoing_by_node: Vec<Vec<LinkId>> = vec![Vec::new(); names.len()];
        for (i, link) in links.iter().enumerate() {
            outgoing_by_node[link.src().index()].push(LinkId::from_index(i));
        }
        let nodes: Vec<NodeSlot> = names
            .into_iter()
            .zip(logics)
            .map(|(name, logic)| NodeSlot {
                name,
                logic: Some(logic),
            })
            .collect();
        let node_count = nodes.len();
        let mut net = Network {
            now: SimTime::ZERO,
            queue,
            nodes,
            links,
            flows,
            reverse_delays,
            monitors,
            rx_next,
            lifecycle_started,
            packet_counters: vec![0; node_count],
            site_counters: vec![0; node_count + 1],
            role,
            outbox: Vec::new(),
            cursor: None,
            current_key: 0,
            notify_losses,
            started: false,
            tracer,
            probe,
            faults,
            churn,
            window,
            stale_events: 0,
            dispatch,
            logical_events: 0,
            // Pre-sized so even per-flow action bursts (epoch timers on
            // an edge carrying many flows) stay allocation-free.
            scratch: ActionBuf::with_capacity(64),
            outgoing_by_node,
        };
        // The initial schedule is replicated on every shard, in the same
        // order, so the GLOBAL site counter advances identically and the
        // resulting keys agree everywhere.
        if let Some(t) = net.churn.as_mut().and_then(ChurnState::first_arrival) {
            net.push_event(t, SITE_GLOBAL, Event::ChurnArrival);
        }
        for i in 0..net.flows.len() {
            let id = net.flows[i].id;
            for w in 0..net.flows[i].activations.len() {
                let (start, stop) = net.flows[i].activations[w];
                net.push_event(start, SITE_GLOBAL, Event::FlowStart { flow: id });
                if let Some(stop) = stop {
                    net.push_event(stop, SITE_GLOBAL, Event::FlowStop { flow: id });
                }
            }
        }
        net
    }

    /// Mints the next canonical key for `site` (see [`KEY_SITE_SHIFT`]).
    #[inline]
    fn next_key(&mut self, site: u64) -> u64 {
        let counter = &mut self.site_counters[site as usize];
        debug_assert!(*counter < 1 << KEY_SITE_SHIFT, "site counter overflow");
        let key = ((site + 1) << KEY_SITE_SHIFT) | *counter;
        *counter += 1;
        key
    }

    /// Whether this instance executes `node` (always true when serial).
    #[inline]
    fn owns(&self, node: NodeId) -> bool {
        match &self.role {
            ExecRole::Whole => true,
            ExecRole::Shard(v) => v.shard_of_node[node.index()] == v.me,
        }
    }

    /// Whether this instance is the designated counter of fully
    /// replicated work (serial, or shard 0).
    #[inline]
    fn is_lead(&self) -> bool {
        match &self.role {
            ExecRole::Whole => true,
            ExecRole::Shard(v) => v.me == 0,
        }
    }

    /// Keys a fresh event at `site` and routes it: locally queued, or —
    /// when its destination node belongs to another shard — into the
    /// outbox for the next barrier exchange. The site counter advances
    /// either way, keeping key streams identical across shards.
    fn push_event(&mut self, time: SimTime, site: u64, event: Event) {
        let key = self.next_key(site);
        let dst = match &event {
            Event::Arrive { node, .. }
            | Event::Timer { node, .. }
            | Event::Control { node, .. } => Some(*node),
            // `TxDone` syncs a link the executing node owns; lifecycle and
            // churn events are replicated rather than routed.
            Event::TxDone { .. }
            | Event::FlowStart { .. }
            | Event::FlowStop { .. }
            | Event::ChurnArrival
            | Event::ChurnRetire { .. } => None,
        };
        if let (ExecRole::Shard(v), Some(node)) = (&self.role, dst) {
            let shard = v.shard_of_node[node.index()];
            if shard != v.me {
                debug_assert!(
                    v.lookahead.is_some_and(|l| time >= self.now + l),
                    "cross-shard event violates the lookahead promise"
                );
                self.outbox.push((shard, time, key, event));
                return;
            }
        }
        self.queue.push_keyed(time, key, (key, event));
    }

    fn trace(&self, event: TraceEvent) {
        if let Some(tracer) = &self.tracer {
            tracer.borrow_mut().record(self.now, &event);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The flows in the network.
    pub fn flows(&self) -> &[FlowInfo] {
        &self.flows
    }

    /// The human-readable name of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Propagation delay along the reverse path from `node` back to
    /// `flow`'s ingress (exposed for tests and tooling).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on `flow`'s path.
    pub fn reverse_delay(&self, flow: FlowId, node: NodeId) -> SimDuration {
        let info = &self.flows[flow.index()];
        let pos = info
            .path
            .iter()
            .position(|&n| n == node)
            .unwrap_or_else(|| panic!("node {node} is not on the path of {flow}"));
        self.reverse_delays[flow.index()][pos]
    }

    /// Delivers the one-time `on_start` sweep. Each node's start runs on
    /// its owner only, under a pseudo-cursor key (`node.index()`, below
    /// every real event key) so captured records merge ahead of all t=0
    /// events in node order — exactly the serial sweep order.
    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.owns(node) {
                continue;
            }
            if let Some(cursor) = &self.cursor {
                cursor.set((SimTime::ZERO, i as u64));
            }
            self.with_logic(node, |logic, ctx| logic.on_start(ctx));
        }
    }

    /// Runs the simulation until virtual time `end`, processing every
    /// event scheduled at or before it. Can be called repeatedly with
    /// increasing horizons.
    pub fn run_until(&mut self, end: SimTime) {
        self.start_if_needed();
        while let Some((time, (key, event))) = self.queue.pop_at_or_before(end) {
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.current_key = key;
            if let Some(cursor) = &self.cursor {
                cursor.set((time, key));
            }
            self.dispatch(event);
        }
        // Advance to the horizon, but never rewind: a caller passing an
        // `end` earlier than the current time must not move the clock (and
        // with it the measurement windows) backwards.
        if end > self.now {
            self.now = end;
        }
    }

    /// Runs every event *strictly* before `boundary` without advancing
    /// the clock to it — the per-epoch step of a sharded run, where
    /// events at exactly `boundary` may still arrive from peer shards at
    /// the next barrier exchange.
    pub(crate) fn run_before(&mut self, boundary: SimTime) {
        self.start_if_needed();
        let Some(limit) = boundary.as_nanos().checked_sub(1) else {
            return;
        };
        let limit = SimTime::from_nanos(limit);
        while let Some((time, (key, event))) = self.queue.pop_at_or_before(limit) {
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.current_key = key;
            if let Some(cursor) = &self.cursor {
                cursor.set((time, key));
            }
            self.dispatch(event);
        }
    }

    /// The instant `node`'s control plane resumes, if it is paused now.
    fn pause_end(&self, node: NodeId) -> Option<SimTime> {
        self.faults
            .as_ref()
            .and_then(|f| f.paused_until(node, self.now))
    }

    /// Whether this instance accounts `event` in `logical_events` and any
    /// per-event staleness. Node-addressed events only ever reach their
    /// owner, so they always count; replicated lifecycle events are
    /// processed by every shard but counted once, by the owner of the
    /// slot's *current* occupant's ingress (identical on every shard, so
    /// the choice is deterministic); the churn arrival process itself is
    /// counted by the lead shard.
    fn counts(&self, event: &Event) -> bool {
        match event {
            Event::TxDone { .. } => false,
            Event::Arrive { .. } | Event::Timer { .. } | Event::Control { .. } => true,
            Event::FlowStart { flow } | Event::FlowStop { flow } | Event::ChurnRetire { flow } => {
                self.owns(self.flows[flow.index()].ingress())
            }
            Event::ChurnArrival => self.is_lead(),
        }
    }

    fn dispatch(&mut self, event: Event) {
        if self.counts(&event) {
            self.logical_events += 1;
        }
        match event {
            Event::Arrive { node, packet } => self.handle_arrive(node, packet),
            // A checkpoint: retire the link's departures up to now. The
            // train path does the same lazily, so this changes nothing
            // observable — it only restores per-packet event granularity.
            Event::TxDone { link } => self.links[link.index()].sync(self.now),
            Event::Timer { node, timer } => {
                if let Some(until) = self.pause_end(node) {
                    // Defer to the pause's end so self-rescheduling timer
                    // chains (epochs, pacing) resume afterwards.
                    self.trace(TraceEvent::Fault {
                        kind: FaultKind::RouterPaused,
                        node,
                        flow: None,
                    });
                    self.push_event(until, node_site(node), Event::Timer { node, timer });
                    return;
                }
                self.with_logic(node, |logic, ctx| logic.on_timer(ctx, timer));
            }
            Event::Control { node, msg } => {
                let (flow, is_feedback) = match msg {
                    ControlMsg::MarkerFeedback { marker, .. } => (marker.flow, true),
                    ControlMsg::Loss { flow, .. } => (flow, false),
                    ControlMsg::Ack { flow, .. } => (flow, false),
                };
                // A control message that outlived its flow's slot (the
                // slot was recycled to a new generation) must not be
                // delivered as if it concerned the new occupant.
                if self.flows[flow.index()].id != flow {
                    self.stale_events += 1;
                    return;
                }
                if self.pause_end(node).is_some() {
                    // A paused control plane cannot receive signalling.
                    self.trace(TraceEvent::Fault {
                        kind: FaultKind::ControlLost,
                        node,
                        flow: Some(flow),
                    });
                    return;
                }
                self.trace(TraceEvent::Control {
                    node,
                    flow,
                    is_feedback,
                });
                self.with_logic(node, |logic, ctx| logic.on_control(ctx, msg));
            }
            Event::FlowStart { flow } => {
                // Replicated on every shard: the slot bookkeeping below
                // must advance everywhere, while staleness accounting,
                // traces, and the logic callback belong to the counting
                // shard (the ingress owner) alone.
                let counting = self.counts(&Event::FlowStart { flow });
                if self.flows[flow.index()].id != flow {
                    self.stale_events += u64::from(counting);
                    return;
                }
                let ingress = self.flows[flow.index()].ingress();
                if let Some(until) = self.pause_end(ingress) {
                    if counting {
                        self.trace(TraceEvent::Fault {
                            kind: FaultKind::RouterPaused,
                            node: ingress,
                            flow: Some(flow),
                        });
                    }
                    self.push_event(until, SITE_GLOBAL, Event::FlowStart { flow });
                    return;
                }
                // A start that slid (via pause deferral) outside its
                // activation window is stale: the flow is not scheduled
                // to run now, so starting it would contradict the
                // schedule the monitors and reference solvers see. A
                // start for a window the slot is already started in (two
                // deferred starts landing in the same window) is equally
                // stale — but a start for a *later* window goes through
                // even when the previous window's stop was swallowed by
                // a pause, so a restart is never lost.
                let window = self.flows[flow.index()].activation_index_at(self.now);
                let Some(window) = window else {
                    self.stale_events += u64::from(counting);
                    return;
                };
                if self.lifecycle_started[flow.index()] == Some(window as u32) {
                    self.stale_events += u64::from(counting);
                    return;
                }
                self.lifecycle_started[flow.index()] = Some(window as u32);
                // Replicated on every shard (like the bookkeeping above)
                // so the *egress* owner — which may not be the counting
                // shard — starts the new activation with a fresh receiver.
                self.rx_next[flow.index()] = 0;
                if counting {
                    self.with_logic(ingress, |logic, ctx| logic.on_flow_start(ctx, flow));
                }
            }
            Event::FlowStop { flow } => {
                let counting = self.counts(&Event::FlowStop { flow });
                if self.flows[flow.index()].id != flow {
                    self.stale_events += u64::from(counting);
                    return;
                }
                let ingress = self.flows[flow.index()].ingress();
                if let Some(until) = self.pause_end(ingress) {
                    if counting {
                        self.trace(TraceEvent::Fault {
                            kind: FaultKind::RouterPaused,
                            node: ingress,
                            flow: Some(flow),
                        });
                    }
                    self.push_event(until, SITE_GLOBAL, Event::FlowStop { flow });
                    return;
                }
                // A deferred stop landing inside a *later* activation
                // window is stale: delivering it would kill the new
                // activation (the stop's own window already ended, or it
                // would not have been deferred past its instant). A stop
                // for a slot that never (or no longer) counts as started
                // is stale too — its start was itself discarded.
                if self.flows[flow.index()].is_active_at(self.now)
                    || self.lifecycle_started[flow.index()].is_none()
                {
                    self.stale_events += u64::from(counting);
                    return;
                }
                self.lifecycle_started[flow.index()] = None;
                let transient = self.flows[flow.index()].is_transient();
                if counting {
                    self.with_logic(ingress, |logic, ctx| logic.on_flow_stop(ctx, flow));
                }
                if transient {
                    if let Some(churn) = self.churn.as_mut() {
                        churn.note_stop(self.now, flow.index());
                    }
                }
            }
            Event::ChurnArrival => self.handle_churn_arrival(),
            Event::ChurnRetire { flow } => self.handle_churn_retire(flow),
        }
    }

    /// Creates the next churn flow: draws its route, weight and size,
    /// installs it in a (possibly recycled) table slot, and schedules its
    /// lifecycle events.
    fn handle_churn_arrival(&mut self) {
        let now = self.now;
        let churn = self.churn.as_mut().expect("ChurnArrival without churn");
        let plan = churn.plan_arrival(now);
        let packet_size = churn.packet_size();
        let linger = churn.linger();
        let route = churn.route(plan.route);
        let (path, hops, rds) = (
            route.path.clone(),
            route.hops.clone(),
            route.reverse_delays.clone(),
        );
        if let Some(next) = plan.next_arrival {
            self.push_event(next, SITE_GLOBAL, Event::ChurnArrival);
        }
        let id = FlowId::with_generation(plan.slot, plan.generation);
        let info = FlowInfo::new(
            id,
            plan.weight,
            packet_size,
            0.0,
            path,
            hops,
            vec![(now, Some(plan.stop))],
        )
        .transient();
        if plan.fresh {
            debug_assert_eq!(plan.slot, self.flows.len(), "fresh slot extends the table");
            self.flows.push(info);
            self.monitors.push(FlowMonitor::new(now, self.window));
            self.lifecycle_started.push(None);
            self.rx_next.push(0);
            self.reverse_delays.push(rds);
        } else {
            self.flows[plan.slot] = info;
            self.monitors[plan.slot] = FlowMonitor::new(now, self.window);
            self.rx_next[plan.slot] = 0;
            // The previous occupant's stop may still sit deferred behind
            // a pause; its delivery is blocked by the generation guard,
            // so the new occupant starts from a clean lifecycle state.
            self.lifecycle_started[plan.slot] = None;
            let slot_rds = &mut self.reverse_delays[plan.slot];
            slot_rds.clear();
            slot_rds.extend_from_slice(&rds);
        }
        // Deliver the start through the regular (pause-aware) path, and
        // schedule the stop and the slot's retirement after the drain.
        self.push_event(now, SITE_GLOBAL, Event::FlowStart { flow: id });
        self.push_event(plan.stop, SITE_GLOBAL, Event::FlowStop { flow: id });
        self.push_event(
            plan.stop + linger,
            SITE_GLOBAL,
            Event::ChurnRetire { flow: id },
        );
    }

    /// Finalizes a drained churn flow: records its completion metrics and
    /// returns its slot to the free list.
    fn handle_churn_retire(&mut self, flow: FlowId) {
        let idx = flow.index();
        debug_assert_eq!(
            self.flows[idx].id, flow,
            "slot recycled before its retire event"
        );
        let monitor = &self.monitors[idx];
        let first = monitor.first_delivery();
        let last = monitor.last_delivery();
        let delivered = monitor.delivered_packets();
        self.churn
            .as_mut()
            .expect("ChurnRetire without churn")
            .retire(self.now, self.current_key, idx, first, last, delivered);
    }

    fn handle_arrive(&mut self, node: NodeId, packet: Packet) {
        let flow = &self.flows[packet.flow.index()];
        // A packet still in flight when its slot was recycled belongs to
        // the previous generation; it must not be forwarded along (or
        // accounted to) the new occupant's flow.
        if flow.id != packet.flow {
            self.stale_events += 1;
            return;
        }
        if flow.egress() == node {
            match packet.seq {
                None => {
                    // Open-loop delivery: the pre-transport path, byte for
                    // byte.
                    let delay = self.now.saturating_since(packet.sent_at);
                    self.trace(TraceEvent::Deliver {
                        node,
                        packet: packet.id,
                        flow: packet.flow,
                    });
                    self.monitors[packet.flow.index()].record_delivery(
                        self.now,
                        packet.size,
                        delay,
                    );
                }
                Some(si) => self.handle_gbn_arrival(node, &packet, si),
            }
        } else if self.pause_end(node).is_some() {
            // A paused router's data plane keeps moving packets, but its
            // control plane does not run: forward blindly along the path
            // with no marking, detection, or shaping.
            let next_hop = flow.next_hop(node);
            self.trace(TraceEvent::Fault {
                kind: FaultKind::RouterPaused,
                node,
                flow: Some(packet.flow),
            });
            if let Some(link) = next_hop {
                self.apply_action(node, Action::Forward { link, packet });
            }
        } else {
            self.with_logic(node, |logic, ctx| logic.on_packet(ctx, packet));
        }
    }

    /// The egress side of the go-back-N transport: deliver in-order
    /// packets, discard (but account) duplicates and out-of-order
    /// arrivals, and send a cumulative ack back to the ingress along the
    /// reverse path.
    ///
    /// Retransmitted packets keep their *original* `sent_at`, so an
    /// in-order retransmit's delivery delay spans back to the first
    /// attempt (flow-completion accounting sees when the byte was first
    /// offered). The ack echoes that timestamp together with the
    /// retransmit flag so the sender's RTT estimator can apply Karn's
    /// rule and skip the ambiguous sample.
    fn handle_gbn_arrival(&mut self, node: NodeId, packet: &Packet, si: crate::packet::SeqInfo) {
        let idx = packet.flow.index();
        if si.seq == self.rx_next[idx] {
            self.rx_next[idx] = si.seq + 1;
            let delay = self.now.saturating_since(packet.sent_at);
            self.trace(TraceEvent::Deliver {
                node,
                packet: packet.id,
                flow: packet.flow,
            });
            self.monitors[idx].record_delivery(self.now, packet.size, delay);
        } else {
            // A go-back-N receiver accepts only the next in-order
            // sequence number; everything else (redelivered windows
            // after an RTO, reordered arrivals) is discarded without
            // touching the goodput counters.
            self.monitors[idx].record_duplicate(packet.size);
        }
        // Every arrival is (re-)acked cumulatively — duplicate acks are
        // the sender's fast-retransmit signal.
        let flow = &self.flows[idx];
        let pos = flow.path.len() - 1;
        debug_assert_eq!(flow.path[pos], node, "gbn ack sink off the egress");
        let delay = self.reverse_delays[idx][pos];
        let ingress = flow.ingress();
        let msg = ControlMsg::Ack {
            flow: packet.flow,
            cum_seq: self.rx_next[idx],
            echo: packet.sent_at,
            retx: si.retransmit,
        };
        self.push_control(node, ingress, delay, msg);
    }

    fn with_logic<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn RouterLogic, &mut Ctx<'_>),
    {
        let mut logic = self.nodes[node.index()]
            .logic
            .take()
            .expect("router logic invoked re-entrantly");
        debug_assert!(self.scratch.is_empty(), "action scratch not drained");
        {
            let mut ctx = Ctx::new(
                self.now,
                node,
                &mut self.links,
                &self.flows,
                &self.reverse_delays,
                &mut self.packet_counters[node.index()],
                &self.outgoing_by_node[node.index()],
                &mut self.scratch,
                self.probe.as_deref(),
            );
            f(logic.as_mut(), &mut ctx);
        }
        self.nodes[node.index()].logic = Some(logic);
        // Applying an action never pushes back into the scratch buffer
        // (drops notify via `push_control`, which schedules directly on
        // the event queue), so a single cursor pass drains it.
        while let Some(action) = self.scratch.take_next() {
            self.apply_action(node, action);
        }
        self.scratch.reset();
    }

    fn apply_action(&mut self, node: NodeId, action: Action) {
        match action {
            Action::Forward { link, mut packet } => {
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.link_down(link, self.now))
                {
                    self.trace(TraceEvent::Fault {
                        kind: FaultKind::LinkDown,
                        node,
                        flow: Some(packet.flow),
                    });
                    self.record_drop(node, &packet, DropReason::Fault);
                    return;
                }
                if packet.marker.is_some() {
                    let stripped = self
                        .faults
                        .as_mut()
                        .is_some_and(|f| f.marker_stripped(link));
                    if stripped {
                        packet.marker = None;
                        self.trace(TraceEvent::Fault {
                            kind: FaultKind::MarkerStripped,
                            node,
                            flow: Some(packet.flow),
                        });
                    }
                }
                // The whole transmission is resolved at enqueue: `offer`
                // computes the FIFO departure time, so the delivery event
                // can be scheduled immediately and no per-packet TxDone
                // is needed (a burst becomes one train of Arrives).
                let accepted = {
                    let l = &mut self.links[link.index()];
                    assert_eq!(
                        l.src(),
                        node,
                        "node {node} forwarded on link {link} it does not own"
                    );
                    l.offer(self.now, packet.size)
                        .map(|dep| (dep, l.queue_len(self.now), l.dst(), l.spec().delay))
                };
                match accepted {
                    Some((dep, queue_len, dst, prop)) => {
                        self.trace(TraceEvent::Enqueue {
                            link,
                            packet: packet.id,
                            flow: packet.flow,
                            queue_len,
                        });
                        if self.dispatch == DispatchMode::PerPacket {
                            self.push_event(dep, node_site(node), Event::TxDone { link });
                        }
                        self.push_event(
                            dep + prop,
                            node_site(node),
                            Event::Arrive { node: dst, packet },
                        );
                    }
                    // `offer` already counted the tail drop on the link;
                    // the packet stays with us for flow-level accounting.
                    None => self.record_drop(node, &packet, DropReason::Tail),
                }
            }
            Action::Drop { packet, reason } => {
                self.record_drop(node, &packet, reason);
            }
            Action::Control { to, delay, msg } => {
                self.push_control(node, to, delay, msg);
            }
            Action::Timer { delay, timer } => {
                self.push_event(
                    self.now + delay,
                    node_site(node),
                    Event::Timer { node, timer },
                );
            }
        }
    }

    /// Schedules a control message sent by `from` for delivery after
    /// `delay`, applying any configured control-plane faults (loss, extra
    /// delay/jitter). Fault draws come from `from`'s dedicated stream, so
    /// a shard executing `from` reproduces the serial draw sequence
    /// without seeing any other node's sends.
    fn push_control(&mut self, from: NodeId, to: NodeId, delay: SimDuration, msg: ControlMsg) {
        let flow = match msg {
            ControlMsg::MarkerFeedback { marker, .. } => marker.flow,
            ControlMsg::Loss { flow, .. } => flow,
            ControlMsg::Ack { flow, .. } => flow,
        };
        // Decide first, trace after: the fault state needs `&mut self`
        // while tracing borrows `&self`.
        let (lost, extra) = match self.faults.as_mut() {
            Some(f) => {
                if f.control_lost(from) {
                    (true, SimDuration::ZERO)
                } else {
                    (false, f.control_extra_delay(from))
                }
            }
            None => (false, SimDuration::ZERO),
        };
        if lost {
            self.trace(TraceEvent::Fault {
                kind: FaultKind::ControlLost,
                node: to,
                flow: Some(flow),
            });
            return;
        }
        if !extra.is_zero() {
            self.trace(TraceEvent::Fault {
                kind: FaultKind::ControlDelayed,
                node: to,
                flow: Some(flow),
            });
        }
        self.push_event(
            self.now + delay + extra,
            node_site(from),
            Event::Control { node: to, msg },
        );
    }

    fn record_drop(&mut self, at: NodeId, packet: &Packet, reason: DropReason) {
        // Stale-generation packets are not accounted to the slot's new
        // occupant (mirrors the delivery-side guard in `handle_arrive`).
        if self.flows[packet.flow.index()].id != packet.flow {
            self.stale_events += 1;
            return;
        }
        self.trace(TraceEvent::Drop {
            node: at,
            packet: packet.id,
            flow: packet.flow,
            reason,
        });
        self.monitors[packet.flow.index()].record_drop(reason);
        if self.notify_losses {
            let flow = &self.flows[packet.flow.index()];
            // The drop site is always on the flow's path; notify the
            // ingress after the reverse propagation delay.
            if let Some(pos) = flow.path.iter().position(|&n| n == at) {
                let delay = self.reverse_delays[packet.flow.index()][pos];
                let ingress = flow.ingress();
                let msg = ControlMsg::Loss {
                    flow: packet.flow,
                    at,
                };
                self.push_control(at, ingress, delay, msg);
            }
        }
    }

    /// Installs the capture cursor (shard workers only); see
    /// [`EventCursor`].
    pub(crate) fn install_cursor(&mut self, cursor: EventCursor) {
        self.cursor = Some(cursor);
    }

    /// Takes the events bound for other shards accumulated since the last
    /// call (the barrier-exchange payload).
    pub(crate) fn take_outgoing(&mut self) -> Vec<OutboundEvent> {
        std::mem::take(&mut self.outbox)
    }

    /// Enqueues an event received from a peer shard under its original
    /// canonical key.
    pub(crate) fn inject(&mut self, time: SimTime, key: u64, event: Event) {
        self.queue.push_keyed(time, key, (key, event));
    }

    /// The egress node index of every flow slot (identical on every
    /// shard; used to pick each flow's owning shard during the merge).
    pub(crate) fn flow_egress_nodes(&self) -> Vec<u32> {
        self.flows
            .iter()
            .map(|f| f.egress().index() as u32)
            .collect()
    }

    /// Events popped from this instance's queue (per-shard work measure).
    pub(crate) fn events_popped(&self) -> u64 {
        self.queue.delivered()
    }

    /// Drains the deferred churn completion log (sharded runs only; see
    /// [`crate::churn::CompletionRecord`]).
    pub(crate) fn take_completions(&mut self) -> Vec<crate::churn::CompletionRecord> {
        self.churn
            .as_mut()
            .map(|c| c.take_completions())
            .unwrap_or_default()
    }

    /// The churn arrival window `(start, stop)`, if churn is configured
    /// (needed to replay completion records at merge time).
    pub(crate) fn churn_window(&self) -> Option<(SimTime, SimTime)> {
        self.churn.as_ref().map(|c| c.completion_window())
    }

    /// Consumes the network and assembles the final [`SimReport`].
    ///
    /// `end` should be the time passed to the final
    /// [`run_until`](Network::run_until) call; series are closed at that
    /// instant.
    pub fn into_report(mut self, end: SimTime) -> SimReport {
        // Retire every departure up to the horizon so the forwarded
        // counters and the occupancy integrals are final. (Under lazy
        // train dispatch this is where the last trains are accounted.)
        for l in &mut self.links {
            l.sync(end);
        }
        // Logical events plus one serialization per forwarded packet:
        // identical across dispatch modes, and numerically equal to the
        // popped-event count of the per-TxDone engine.
        let events_processed =
            self.logical_events + self.links.iter().map(Link::forwarded_packets).sum::<u64>();
        let flows = self
            .monitors
            .into_iter()
            .zip(&self.flows)
            .map(|(monitor, info)| {
                let (goodput, cumulative, delay, totals) = monitor.finish(end);
                FlowReport {
                    id: info.id,
                    weight: info.weight,
                    goodput,
                    cumulative,
                    delivered_packets: totals.delivered_packets,
                    delivered_bytes: totals.delivered_bytes,
                    duplicate_packets: totals.duplicate_packets,
                    duplicate_bytes: totals.duplicate_bytes,
                    tail_drops: totals.tail_drops,
                    policy_drops: totals.policy_drops,
                    fault_drops: totals.fault_drops,
                    mean_delay_secs: totals.mean_delay_secs,
                    delay,
                }
            })
            .collect();
        let horizon = end.as_secs_f64();
        let links = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| LinkReport {
                id: LinkId::from_index(i),
                src: l.src(),
                dst: l.dst(),
                forwarded_packets: l.forwarded_packets(),
                forwarded_bytes: l.forwarded_bytes(),
                dropped_packets: l.dropped_packets(),
                peak_occupancy: l.peak_occupancy(),
                utilization: if horizon > 0.0 {
                    (l.forwarded_bytes() as f64 * 8.0) / (l.spec().bandwidth_bps as f64 * horizon)
                } else {
                    0.0
                },
            })
            .collect();
        let logic: crate::slab::DenseMap<NodeId, _> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                (
                    NodeId::from_index(i),
                    slot.logic
                        .as_ref()
                        .expect("logic present outside callbacks")
                        .report(end),
                )
            })
            .collect();
        let stale_events = self.stale_events;
        SimReport {
            end,
            flows,
            links,
            logic,
            events_processed,
            churn: self.churn.map(|c| c.finish(end, stale_events)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::link::LinkSpec;
    use crate::logic::{CbrSource, ForwardLogic};
    use crate::topology::TopologyBuilder;

    fn fast_link() -> LinkSpec {
        LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
    }

    /// src --40ms--> mid --40ms--> dst, CBR 100 pkt/s, capacity 500 pkt/s.
    fn chain(rate: f64) -> (Network, FlowId) {
        let mut b = TopologyBuilder::new(11);
        let src = b.node("src", move |_| Box::new(CbrSource::new(rate)));
        let mid = b.node("mid", |_| Box::new(ForwardLogic));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, mid, fast_link());
        b.link(mid, dst, fast_link());
        let f = b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
        (b.build(), f)
    }

    #[test]
    fn cbr_traffic_is_delivered_at_source_rate() {
        let (mut net, f) = chain(100.0);
        let end = SimTime::from_secs(10);
        net.run_until(end);
        let report = net.into_report(end);
        let fr = report.flow(f);
        // 100 pkt/s for 10 s minus packets still in flight at the end
        // (≈ 84 ms of pipeline ⇒ up to ~9 packets).
        assert!(
            (988..=1000).contains(&(fr.delivered_packets as i64)),
            "delivered {}",
            fr.delivered_packets
        );
        assert_eq!(fr.total_drops(), 0);
        // End-to-end delay: 2 hops × (2 ms tx + 40 ms prop) = 84 ms.
        assert!(
            (fr.mean_delay_secs - 0.084).abs() < 1e-3,
            "delay {}",
            fr.mean_delay_secs
        );
    }

    #[test]
    fn goodput_series_tracks_source_rate() {
        let (mut net, f) = chain(100.0);
        let end = SimTime::from_secs(10);
        net.run_until(end);
        let report = net.into_report(end);
        let mean = report
            .flow(f)
            .mean_goodput_in(SimTime::from_secs(2), SimTime::from_secs(10))
            .expect("goodput window lies within the run");
        assert!((mean - 100.0).abs() < 2.0, "mean goodput {mean}");
    }

    #[test]
    fn overload_tail_drops_and_notifies() {
        // 1000 pkt/s into a 500 pkt/s link: half the traffic must drop.
        let (mut net, f) = chain(1000.0);
        let end = SimTime::from_secs(5);
        net.run_until(end);
        let report = net.into_report(end);
        let fr = report.flow(f);
        assert!(fr.tail_drops > 1000, "drops {}", fr.tail_drops);
        let delivered = fr.delivered_packets as f64;
        assert!(
            (delivered - 2500.0).abs() < 100.0,
            "delivered {delivered} should be near link capacity"
        );
        // Queue stayed bounded.
        assert!(report.links[0].peak_occupancy <= 40);
    }

    #[test]
    fn cumulative_series_is_monotonic() {
        let (mut net, f) = chain(200.0);
        let end = SimTime::from_secs(5);
        net.run_until(end);
        let report = net.into_report(end);
        let cum: Vec<f64> = report.flow(f).cumulative.iter().map(|(_, v)| v).collect();
        assert!(cum.windows(2).all(|w| w[1] >= w[0]));
        // The horizon is an exact window boundary: timestamps must still
        // be strictly increasing (no duplicated final sample).
        let times: Vec<SimTime> = report.flow(f).cumulative.iter().map(|(t, _)| t).collect();
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "duplicate cumulative sample at a window boundary"
        );
        assert_eq!(
            *cum.last().expect("cumulative series is never empty"),
            report.flow(f).delivered_packets as f64
        );
    }

    #[test]
    fn flow_activation_window_limits_traffic() {
        let mut b = TopologyBuilder::new(3);
        let src = b.node("src", |_| Box::new(CbrSource::new(100.0)));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, dst, fast_link());
        let f = b.flow(
            FlowSpec::new(vec![src, dst], 1)
                .active(SimTime::from_secs(2), Some(SimTime::from_secs(4))),
        );
        let end = SimTime::from_secs(10);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let delivered = report.flow(f).delivered_packets;
        assert!(
            (195..=201).contains(&delivered),
            "delivered {delivered}, expected ~200 over the 2 s window"
        );
    }

    #[test]
    fn restart_after_stop_resumes_traffic() {
        let mut b = TopologyBuilder::new(3);
        let src = b.node("src", |_| Box::new(CbrSource::new(100.0)));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, dst, fast_link());
        let f = b.flow(
            FlowSpec::new(vec![src, dst], 1)
                .active(SimTime::ZERO, Some(SimTime::from_secs(1)))
                .active(SimTime::from_secs(3), Some(SimTime::from_secs(4))),
        );
        let end = SimTime::from_secs(5);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let delivered = report.flow(f).delivered_packets;
        assert!(
            (195..=202).contains(&delivered),
            "delivered {delivered}, expected ~200 over two 1 s windows"
        );
        // Nothing delivered while the flow was inactive.
        let idle = report
            .flow(f)
            .mean_goodput_in(SimTime::from_secs(2), SimTime::from_secs(3))
            .expect("idle window lies within the run");
        assert!(idle < 5.0, "idle-period goodput {idle}");
    }

    #[test]
    fn run_until_is_resumable() {
        let (mut net, f) = chain(100.0);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.now(), SimTime::from_secs(2));
        net.run_until(SimTime::from_secs(4));
        let report = net.into_report(SimTime::from_secs(4));
        assert!(report.flow(f).delivered_packets > 300);
    }

    #[test]
    fn run_until_never_rewinds_the_clock() {
        let (mut net, f) = chain(100.0);
        net.run_until(SimTime::from_secs(4));
        assert_eq!(net.now(), SimTime::from_secs(4));
        // A stale (earlier) horizon must not move time backwards.
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.now(), SimTime::from_secs(4));
        // And the network still works after the stale call.
        net.run_until(SimTime::from_secs(6));
        let report = net.into_report(SimTime::from_secs(6));
        let delivered = report.flow(f).delivered_packets;
        assert!(
            (590..=600).contains(&delivered),
            "delivered {delivered}, expected ~600 over 6 s"
        );
    }

    #[test]
    fn report_exposes_link_utilization() {
        let (mut net, _) = chain(250.0);
        let end = SimTime::from_secs(10);
        net.run_until(end);
        let report = net.into_report(end);
        // 250 pkt/s of 500 pkt/s capacity ⇒ ~50% utilization.
        let u = report.links[0].utilization;
        assert!((u - 0.5).abs() < 0.02, "utilization {u}");
    }
}

#[cfg(test)]
mod trace_tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::flow::FlowSpec;
    use crate::link::LinkSpec;
    use crate::logic::{CbrSource, ForwardLogic};
    use crate::topology::TopologyBuilder;
    use crate::trace::{CountingTracer, CsvTracer};

    #[test]
    fn counting_tracer_sees_all_event_kinds() {
        let tracer = Rc::new(RefCell::new(CountingTracer::default()));
        let mut b = TopologyBuilder::new(3);
        b.tracer(tracer.clone());
        // Overdriven link: enqueues, drops, deliveries and loss controls.
        let src = b.node("src", |_| Box::new(CbrSource::new(900.0)));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(
            src,
            dst,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 10),
        );
        b.flow(FlowSpec::new(vec![src, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(5);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let counts = *tracer.borrow();
        assert_eq!(counts.delivers, report.flows[0].delivered_packets);
        assert_eq!(counts.drops, report.flows[0].total_drops());
        // Every accepted packet is delivered except those still queued or
        // in flight at the horizon.
        // Bound: queue capacity (10) + one in service + packets inside
        // the 10 ms propagation pipe (~5 at 500 pkt/s).
        let outstanding = counts.enqueues - counts.delivers;
        assert!(outstanding <= 25, "outstanding {outstanding}");
        assert_eq!(
            counts.controls, counts.drops,
            "every drop produces one loss notification"
        );
        assert!(counts.drops > 0, "scenario should overdrive the queue");
    }

    #[test]
    fn csv_tracer_produces_parseable_rows() {
        let tracer = Rc::new(RefCell::new(CsvTracer::new(Vec::new())));
        let mut b = TopologyBuilder::new(3);
        b.tracer(tracer.clone());
        let src = b.node("src", |_| Box::new(CbrSource::new(50.0)));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(
            src,
            dst,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        b.flow(FlowSpec::new(vec![src, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(2);
        let mut net = b.build();
        net.run_until(end);
        drop(net);
        let rows = tracer.borrow().rows();
        assert!(rows > 100, "rows {rows}");
        // Times are non-decreasing in the emitted CSV.
        let tracer = Rc::try_unwrap(tracer).expect("sole owner").into_inner();
        let text =
            String::from_utf8(tracer.into_inner()).expect("CsvTracer emits only valid UTF-8");
        let mut last = 0.0f64;
        for line in text.lines().skip(1) {
            let t: f64 = line
                .split(',')
                .next()
                .expect("every CSV row starts with a time column")
                .parse()
                .expect("the time column is a decimal number");
            assert!(t >= last, "trace went backwards: {line}");
            last = t;
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::fault::FaultPlan;
    use crate::flow::FlowSpec;
    use crate::link::LinkSpec;
    use crate::logic::{CbrSource, Ctx, ForwardLogic, RouterLogic};
    use crate::packet::Marker;
    use crate::topology::TopologyBuilder;
    use crate::trace::CountingTracer;

    fn fast_link() -> LinkSpec {
        LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
    }

    /// src --> mid --> dst with a CBR source and an installed fault plan.
    fn faulty_chain(rate: f64, plan: FaultPlan) -> (Network, FlowId, Rc<RefCell<CountingTracer>>) {
        let tracer = Rc::new(RefCell::new(CountingTracer::default()));
        let mut b = TopologyBuilder::new(11);
        b.tracer(tracer.clone());
        b.faults(plan);
        let src = b.node("src", move |_| Box::new(CbrSource::new(rate)));
        let mid = b.node("mid", |_| Box::new(ForwardLogic));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, mid, fast_link());
        b.link(mid, dst, fast_link());
        let f = b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
        (b.build(), f, tracer)
    }

    #[test]
    fn total_control_loss_suppresses_all_notifications() {
        // Overdriven link: every drop would normally yield one loss
        // notification; with control_loss = 1.0 none may arrive.
        let (mut net, f, tracer) = faulty_chain(1000.0, FaultPlan::new().control_loss(1.0));
        let end = SimTime::from_secs(5);
        net.run_until(end);
        let report = net.into_report(end);
        let counts = *tracer.borrow();
        assert!(report.flow(f).tail_drops > 1000);
        assert_eq!(counts.controls, 0, "all control messages must be lost");
        assert_eq!(
            counts.faults,
            report.flow(f).tail_drops,
            "one ControlLost fault per suppressed notification"
        );
    }

    #[test]
    fn control_delay_defers_but_delivers_notifications() {
        let plan = FaultPlan::new().control_delay(SimDuration::from_millis(200), SimDuration::ZERO);
        let (mut net, f, tracer) = faulty_chain(1000.0, plan);
        let end = SimTime::from_secs(5);
        net.run_until(end);
        let report = net.into_report(end);
        let counts = *tracer.borrow();
        assert!(report.flow(f).tail_drops > 1000);
        // Delayed, not lost: notifications still arrive (except those
        // pushed past the horizon by the extra delay).
        assert!(counts.controls > 0);
        assert!(counts.faults > 0, "each delay is traced");
    }

    #[test]
    fn flap_window_drops_then_recovers() {
        let flap = FaultPlan::new().flap(
            LinkId::from_index(0),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let (mut net, f, _tracer) = faulty_chain(100.0, flap);
        let end = SimTime::from_secs(10);
        net.run_until(end);
        let report = net.into_report(end);
        let fr = report.flow(f);
        // One second of 100 pkt/s lost to the downed link.
        assert!(
            (95..=105).contains(&(fr.fault_drops as i64)),
            "fault drops {}",
            fr.fault_drops
        );
        assert_eq!(fr.tail_drops, 0);
        assert!(
            (885..=905).contains(&(fr.delivered_packets as i64)),
            "delivered {}",
            fr.delivered_packets
        );
        // Traffic resumed after the flap: goodput over [3 s, 10 s) is the
        // full source rate.
        let after = fr
            .mean_goodput_in(SimTime::from_secs(3), SimTime::from_secs(10))
            .expect("post-flap window lies within the run");
        assert!((after - 100.0).abs() < 2.0, "post-flap goodput {after}");
    }

    #[test]
    fn paused_ingress_defers_timer_chains() {
        // Pausing the source's control plane for [1 s, 2 s) stops its
        // emission timers; the chain resumes at the window's end.
        let pause = FaultPlan::new().pause(
            NodeId::from_index(0),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let (mut net, f, tracer) = faulty_chain(100.0, pause);
        let end = SimTime::from_secs(10);
        net.run_until(end);
        let report = net.into_report(end);
        let fr = report.flow(f);
        assert!(
            (885..=910).contains(&(fr.delivered_packets as i64)),
            "delivered {}, expected ~900 with 1 s of emissions deferred",
            fr.delivered_packets
        );
        assert_eq!(fr.total_drops(), 0);
        assert!(tracer.borrow().faults > 0);
    }

    #[test]
    fn paused_transit_router_blind_forwards() {
        // Pausing a mid-path router must not lose data packets: its data
        // plane keeps forwarding along the path.
        let pause = FaultPlan::new().pause(
            NodeId::from_index(1),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let (mut net, f, tracer) = faulty_chain(100.0, pause);
        let end = SimTime::from_secs(10);
        net.run_until(end);
        let report = net.into_report(end);
        let fr = report.flow(f);
        assert!(
            (988..=1000).contains(&(fr.delivered_packets as i64)),
            "delivered {}",
            fr.delivered_packets
        );
        assert_eq!(fr.total_drops(), 0);
        // ~100 blind-forwarded packets traced as RouterPaused faults.
        assert!(tracer.borrow().faults >= 95);
    }

    /// Emits CBR traffic with a marker on every packet.
    struct MarkingSource {
        rate_pps: f64,
    }

    const MARK_EMIT: u32 = 77;

    impl RouterLogic for MarkingSource {
        fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
            ctx.set_timer(
                SimDuration::ZERO,
                TimerKind::with_param(MARK_EMIT, flow.index() as u64),
            );
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
            if timer.tag != MARK_EMIT {
                return;
            }
            let flow = FlowId::from_index(timer.param as usize);
            if !ctx.flow(flow).is_active_at(ctx.now()) {
                return;
            }
            let node = ctx.node();
            let packet = ctx.new_packet(flow).with_marker(Marker {
                flow,
                edge: node,
                normalized_rate: 1.0,
            });
            ctx.emit(packet);
            ctx.set_timer(
                SimDuration::from_secs_f64(1.0 / self.rate_pps),
                TimerKind::with_param(MARK_EMIT, flow.index() as u64),
            );
        }
    }

    /// Counts marker-carrying packets passing through.
    #[derive(Default)]
    struct MarkerCounter {
        markers_seen: Rc<RefCell<u64>>,
    }

    impl RouterLogic for MarkerCounter {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
            if packet.marker.is_some() {
                *self.markers_seen.borrow_mut() += 1;
            }
            ctx.emit(packet);
        }
    }

    fn marker_run(plan: FaultPlan) -> (u64, u64) {
        let seen = Rc::new(RefCell::new(0u64));
        let seen_handle = seen.clone();
        let mut b = TopologyBuilder::new(5);
        b.faults(plan);
        let src = b.node("src", |_| Box::new(MarkingSource { rate_pps: 100.0 }));
        let mid = b.node("mid", move |_| {
            Box::new(MarkerCounter {
                markers_seen: seen_handle,
            })
        });
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, mid, fast_link());
        b.link(mid, dst, fast_link());
        let f = b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(5);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let delivered = report.flow(f).delivered_packets;
        let markers = *seen.borrow();
        (delivered, markers)
    }

    #[test]
    fn marker_strip_removes_markers_but_keeps_packets() {
        let (clean_delivered, clean_markers) = marker_run(FaultPlan::new());
        assert!(clean_markers >= 490, "markers {clean_markers}");

        let strip = FaultPlan::new().marker_loss(LinkId::from_index(0), 1.0);
        let (delivered, markers) = marker_run(strip);
        assert_eq!(markers, 0, "all markers must be stripped on link 0");
        assert_eq!(
            delivered, clean_delivered,
            "stripping markers must not lose data packets"
        );

        // Stripping on the second hop leaves the mid-node observation
        // intact.
        let strip_late = FaultPlan::new().marker_loss(LinkId::from_index(1), 1.0);
        let (_, markers_late) = marker_run(strip_late);
        assert_eq!(markers_late, clean_markers);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let plan = FaultPlan::new()
            .control_loss(0.3)
            .control_delay(SimDuration::from_millis(5), SimDuration::from_millis(20))
            .flap(
                LinkId::from_index(1),
                SimTime::from_secs(2),
                SimTime::from_millis(2300),
            );
        let run = |plan: FaultPlan| {
            let (mut net, f, tracer) = faulty_chain(700.0, plan);
            let end = SimTime::from_secs(5);
            net.run_until(end);
            let report = net.into_report(end);
            let counts = *tracer.borrow();
            (
                report.flow(f).delivered_packets,
                report.flow(f).total_drops(),
                report.flow(f).fault_drops,
                counts,
            )
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b, "same seed and plan must reproduce exactly");
        assert!(a.2 > 0, "flap must cause fault drops");
        assert!(a.3.faults > 0);
    }
}
