//! A packet-level discrete-event network simulator.
//!
//! `netsim` is the substrate on which the [Corelite] reproduction runs. It
//! models what ns-2 provided to the paper's authors:
//!
//! * directed **links** with a serialization rate, propagation delay, and a
//!   bounded tail-drop FIFO queue ([`link`]),
//! * **nodes** hosting pluggable per-node forwarding behaviour — the
//!   [`logic::RouterLogic`] trait — which is where Corelite edge/core
//!   routers and the CSFQ baseline plug in,
//! * **flows** with explicit hop-by-hop paths, weights and activation
//!   schedules ([`flow`]),
//! * out-of-band **control messages** (marker feedback, loss notifications)
//!   that travel the reverse path with propagation delay ([`logic::ControlMsg`]),
//! * built-in **measurement**: per-flow goodput series, cumulative service,
//!   drop counts, and per-link queue statistics ([`monitor`]).
//!
//! The simulation is fully deterministic: all randomness comes from seeded
//! [`sim_core::rng::DetRng`] streams owned by the router logic, and the
//! event queue orders timestamp ties by a canonical per-site push key —
//! the same order the sharded executor ([`shard`]) merges to, which is
//! what makes multi-threaded runs byte-identical to serial ones.
//!
//! # Example
//!
//! Build a two-node network, let the built-in [`logic::PoissonSource`] push
//! packets through a bottleneck link, and read the delivered goodput:
//!
//! ```
//! use netsim::flow::FlowSpec;
//! use netsim::link::LinkSpec;
//! use netsim::logic::{ForwardLogic, PoissonSource};
//! use netsim::topology::TopologyBuilder;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! let mut b = TopologyBuilder::new(42);
//! let src = b.node("src", |seed| Box::new(PoissonSource::new(seed, 100.0)));
//! let dst = b.node("dst", |_| Box::new(ForwardLogic));
//! b.link(src, dst, LinkSpec::new(1_000_000, SimDuration::from_millis(10), 40));
//! b.flow(FlowSpec::new(vec![src, dst], 1).active(SimTime::ZERO, None));
//! let mut net = b.build();
//! net.run_until(SimTime::from_secs(10));
//! let report = net.into_report(SimTime::from_secs(10));
//! let delivered = report.flows[0].delivered_packets;
//! assert!(delivered > 800 && delivered < 1200, "delivered {delivered}");
//! ```
//!
//! [Corelite]: https://doi.org/10.1109/ICDCS.2000.840934

pub mod churn;
pub mod fault;
pub mod flow;
pub mod ids;
pub mod link;
pub mod logic;
pub mod monitor;
pub mod network;
pub mod packet;
pub mod shard;
pub mod slab;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod transport;

pub use churn::{ChurnReport, ChurnSpec, CohortStats};
pub use fault::{FaultPlan, FaultWindow};
pub use flow::{normalize_activations, FlowInfo, FlowSpec, Transport};
pub use ids::{FlowId, LinkId, NodeId, PacketId};
pub use link::LinkSpec;
pub use logic::{Action, ControlMsg, Ctx, RouterLogic, TimerKind};
pub use monitor::SimReport;
pub use network::{DispatchMode, Network};
pub use packet::{Marker, Packet};
pub use slab::{ActiveSet, DenseMap, SlabKey};
pub use telemetry::{Probe, ProbeRecord, RingProbe, Sample};
pub use topology::TopologyBuilder;
pub use transport::{CongestionControl, GbnConfig, GbnSender, Reno, RttEstimator, WindowLimd};
