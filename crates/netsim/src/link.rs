//! Directed links with a serialization rate, propagation delay, and a
//! bounded tail-drop FIFO queue.
//!
//! A link does not hold packets: the FIFO discipline makes every
//! departure time computable at enqueue — `dep = max(now, previous
//! departure) + tx_time` — so [`Link::offer`] returns the departure time
//! immediately and the packet rides inside its delivery event. The link
//! only remembers the pending departure *train* (`(time, size)` pairs),
//! which [`Link::sync`] drains lazily: counters and the occupancy
//! integral are updated with the original departure timestamps, in
//! order, so statistics are identical to an eager per-departure
//! implementation no matter when `sync` runs (DESIGN.md §13).
//!
//! The queue occupancy (waiting packets plus the packet in service) is
//! integrated continuously with a [`TimeWeightedMean`], which is how a
//! Corelite core router obtains `q_avg` for incipient congestion detection.

use std::collections::VecDeque;

use sim_core::stats::TimeWeightedMean;
use sim_core::time::{SimDuration, SimTime};

use crate::ids::NodeId;

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Serialization rate in bits per second (the paper's links are 4 Mbps).
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in packets, counting the packet in service (the paper
    /// uses 40).
    pub queue_capacity: usize,
}

impl LinkSpec {
    /// Creates a spec from bandwidth (bits/s), propagation delay, and queue
    /// capacity in packets.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `queue_capacity` is zero.
    pub fn new(bandwidth_bps: u64, delay: SimDuration, queue_capacity: usize) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        assert!(queue_capacity > 0, "link queue capacity must be positive");
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_capacity,
        }
    }

    /// Serialization time for a packet of `size` bytes.
    pub fn tx_time(&self, size: u32) -> SimDuration {
        // nanos = bytes * 8 * 1e9 / bps, computed in u128 to avoid overflow.
        let nanos = (size as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(nanos as u64)
    }

    /// Service rate in packets per second for packets of `size` bytes
    /// (the paper's `μ`, with 1 KB packets on 4 Mbps links: 500 pkt/s).
    pub fn service_rate_pps(&self, size: u32) -> f64 {
        self.bandwidth_bps as f64 / (size as f64 * 8.0)
    }
}

/// Runtime state of a directed link.
#[derive(Debug)]
pub struct Link {
    spec: LinkSpec,
    src: NodeId,
    dst: NodeId,
    /// Pending departures as `(departure time, size)` in departure order.
    /// Entries with time ≤ now are *departed but not yet accounted*;
    /// [`Link::sync`] retires them.
    departures: VecDeque<(SimTime, u32)>,
    /// Departure time of the most recently accepted packet; the link is
    /// serializing until then.
    last_departure: SimTime,
    occupancy: TimeWeightedMean,
    forwarded_packets: u64,
    forwarded_bytes: u64,
    dropped_packets: u64,
    peak_occupancy: usize,
    /// One-entry serialization-time cache. `tx_time` costs a 128-bit
    /// division; packet sizes are near-constant in practice, so caching
    /// the last `(size, tx_time)` pair removes it from the per-packet
    /// path while returning bit-identical durations.
    tx_cache: (u32, SimDuration),
}

impl Link {
    /// Creates an idle link from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, spec: LinkSpec) -> Self {
        Link {
            spec,
            src,
            dst,
            // Full capacity up front: a link queue never exceeds its
            // spec'd capacity, so offering never reallocates.
            departures: VecDeque::with_capacity(spec.queue_capacity),
            last_departure: SimTime::ZERO,
            occupancy: TimeWeightedMean::new(SimTime::ZERO, 0.0),
            forwarded_packets: 0,
            forwarded_bytes: 0,
            dropped_packets: 0,
            peak_occupancy: 0,
            // Size 0 never occurs, so the cache starts cold.
            tx_cache: (0, SimDuration::ZERO),
        }
    }

    /// Serialization time for `size` bytes via the one-entry cache.
    fn cached_tx_time(&mut self, size: u32) -> SimDuration {
        if self.tx_cache.0 != size {
            self.tx_cache = (size, self.spec.tx_time(size));
        }
        self.tx_cache.1
    }

    /// The node this link transmits from.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The node this link delivers to.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The link's static parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Queue occupancy in packets (waiting + in service) as of `now`:
    /// pending departures strictly after `now`. A packet departing
    /// exactly at `now` has left the queue (departures precede arrivals
    /// at the same instant).
    pub fn queue_len(&self, now: SimTime) -> usize {
        // Departures are time-ordered, so departed entries form a prefix.
        let departed = self
            .departures
            .iter()
            .take_while(|&&(dep, _)| dep <= now)
            .count();
        self.departures.len() - departed
    }

    /// Retires every departure up to and including `now`, updating the
    /// forwarded counters and feeding the occupancy integral with the
    /// original departure timestamps in order. Idempotent; callers may
    /// invoke it as rarely (lazily) or as often (per packet) as they
    /// like without changing any statistic.
    pub fn sync(&mut self, now: SimTime) {
        while let Some(&(dep, size)) = self.departures.front() {
            if dep > now {
                break;
            }
            self.departures.pop_front();
            self.forwarded_packets += 1;
            self.forwarded_bytes += size as u64;
            self.occupancy.set(dep, self.departures.len() as f64);
        }
    }

    /// Offers a packet of `size` bytes to the queue at time `now`.
    ///
    /// Returns the packet's departure time — `max(now, previous
    /// departure) + tx_time`, the FIFO service curve — or `None` when the
    /// occupancy has reached capacity and the packet is tail-dropped
    /// (the caller keeps the packet for drop accounting).
    pub fn offer(&mut self, now: SimTime, size: u32) -> Option<SimTime> {
        self.sync(now);
        if self.departures.len() >= self.spec.queue_capacity {
            self.dropped_packets += 1;
            return None;
        }
        let start = self.last_departure.max(now);
        let dep = start + self.cached_tx_time(size);
        self.departures.push_back((dep, size));
        self.last_departure = dep;
        self.peak_occupancy = self.peak_occupancy.max(self.departures.len());
        self.occupancy.set(now, self.departures.len() as f64);
        Some(dep)
    }

    /// Closes the queue-average window at `now` and returns the
    /// time-weighted mean occupancy since the previous call (the paper's
    /// `q_avg` over one congestion epoch).
    pub fn take_queue_average(&mut self, now: SimTime) -> f64 {
        self.sync(now);
        self.occupancy.restart(now)
    }

    /// Reads the time-weighted mean occupancy of the current window
    /// without restarting it.
    pub fn queue_average(&mut self, now: SimTime) -> f64 {
        self.sync(now);
        self.occupancy.mean(now)
    }

    /// Total packets fully serialized by this link (as of the last
    /// [`Link::sync`]).
    pub fn forwarded_packets(&self) -> u64 {
        self.forwarded_packets
    }

    /// Total bytes fully serialized by this link (as of the last
    /// [`Link::sync`]).
    pub fn forwarded_bytes(&self) -> u64 {
        self.forwarded_bytes
    }

    /// Total packets tail-dropped at this link.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Highest queue occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps4() -> LinkSpec {
        LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
    }

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn tx_time_matches_paper_numbers() {
        // 1 KB packets over 4 Mbps: 8000 bits / 4e6 bps = 2 ms, 500 pkt/s.
        let spec = mbps4();
        assert_eq!(spec.tx_time(1000), SimDuration::from_millis(2));
        assert!((spec.service_rate_pps(1000) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn departures_follow_the_fifo_service_curve() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        // Idle link: service starts immediately.
        assert_eq!(l.offer(SimTime::ZERO, 1000), Some(ms(2)));
        // Busy link: the second packet waits for the first.
        assert_eq!(l.offer(SimTime::ZERO, 1000), Some(ms(4)));
        assert_eq!(l.queue_len(SimTime::ZERO), 2);
        // After the queue drains, service is arrival-limited again.
        assert_eq!(l.offer(ms(10), 1000), Some(ms(12)));
    }

    #[test]
    fn sync_retires_departed_packets_in_order() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        l.offer(SimTime::ZERO, 1000);
        l.offer(SimTime::ZERO, 1000);
        l.sync(ms(2));
        assert_eq!(l.forwarded_packets(), 1);
        assert_eq!(l.queue_len(ms(2)), 1);
        l.sync(ms(4));
        assert_eq!(l.forwarded_packets(), 2);
        assert_eq!(l.forwarded_bytes(), 2000);
        assert_eq!(l.queue_len(ms(4)), 0);
        // Idempotent.
        l.sync(ms(4));
        assert_eq!(l.forwarded_packets(), 2);
    }

    #[test]
    fn queue_len_is_exact_without_sync() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        l.offer(SimTime::ZERO, 1000);
        l.offer(SimTime::ZERO, 1000);
        // No sync calls: queue_len still reflects the service curve.
        assert_eq!(l.queue_len(ms(1)), 2);
        assert_eq!(l.queue_len(ms(2)), 1);
        assert_eq!(l.queue_len(ms(3)), 1);
        assert_eq!(l.queue_len(ms(4)), 0);
        assert_eq!(l.forwarded_packets(), 0, "accounting stays lazy");
    }

    #[test]
    fn departure_precedes_arrival_at_the_same_instant() {
        let spec = LinkSpec::new(4_000_000, SimDuration::ZERO, 1);
        let mut l = Link::new(NodeId(0), NodeId(1), spec);
        assert_eq!(l.offer(SimTime::ZERO, 1000), Some(ms(2)));
        // At exactly t = 2 ms the in-service packet has departed, so a
        // capacity-1 queue accepts the newcomer back-to-back.
        assert_eq!(l.offer(ms(2), 1000), Some(ms(4)));
        assert_eq!(l.dropped_packets(), 0);
    }

    #[test]
    fn tail_drop_at_capacity() {
        let spec = LinkSpec::new(4_000_000, SimDuration::ZERO, 2);
        let mut l = Link::new(NodeId(0), NodeId(1), spec);
        assert!(l.offer(SimTime::ZERO, 1000).is_some());
        assert!(l.offer(SimTime::ZERO, 1000).is_some());
        assert_eq!(l.offer(SimTime::ZERO, 1000), None);
        assert_eq!(l.dropped_packets(), 1);
        assert_eq!(l.queue_len(SimTime::ZERO), 2);
    }

    #[test]
    fn queue_average_integrates_occupancy() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        // Occupancy 1 during [0, 2ms) then 0 during [2ms, 4ms).
        l.offer(SimTime::ZERO, 1000);
        let avg = l.take_queue_average(ms(4));
        assert!((avg - 0.5).abs() < 1e-9, "avg {avg}");
        // New window starts empty.
        let avg2 = l.take_queue_average(ms(8));
        assert_eq!(avg2, 0.0);
    }

    #[test]
    fn queue_average_is_lazy_sync_invariant() {
        // Two links fed identically, one synced eagerly at every
        // departure, one only at the end: identical statistics.
        let mut eager = Link::new(NodeId(0), NodeId(1), mbps4());
        let mut lazy = Link::new(NodeId(0), NodeId(1), mbps4());
        for t in [0u64, 0, 1, 5, 5, 5, 9, 14] {
            eager.offer(ms(t), 1000);
            lazy.offer(ms(t), 1000);
            eager.sync(ms(t));
        }
        assert_eq!(
            eager.take_queue_average(ms(20)),
            lazy.take_queue_average(ms(20))
        );
        assert_eq!(eager.forwarded_packets(), lazy.forwarded_packets());
        assert_eq!(eager.forwarded_bytes(), lazy.forwarded_bytes());
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        for _ in 0..5 {
            l.offer(SimTime::ZERO, 1000);
        }
        l.sync(ms(2));
        assert_eq!(l.peak_occupancy(), 5);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinkSpec::new(0, SimDuration::ZERO, 1);
    }
}
