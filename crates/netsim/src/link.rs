//! Directed links with a serialization rate, propagation delay, and a
//! bounded tail-drop FIFO queue.
//!
//! The queue occupancy (waiting packets plus the packet in service) is
//! integrated continuously with a [`TimeWeightedMean`], which is how a
//! Corelite core router obtains `q_avg` for incipient congestion detection.

use std::collections::VecDeque;

use sim_core::stats::TimeWeightedMean;
use sim_core::time::{SimDuration, SimTime};

use crate::ids::NodeId;
use crate::packet::Packet;

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Serialization rate in bits per second (the paper's links are 4 Mbps).
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in packets, counting the packet in service (the paper
    /// uses 40).
    pub queue_capacity: usize,
}

impl LinkSpec {
    /// Creates a spec from bandwidth (bits/s), propagation delay, and queue
    /// capacity in packets.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `queue_capacity` is zero.
    pub fn new(bandwidth_bps: u64, delay: SimDuration, queue_capacity: usize) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        assert!(queue_capacity > 0, "link queue capacity must be positive");
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_capacity,
        }
    }

    /// Serialization time for a packet of `size` bytes.
    pub fn tx_time(&self, size: u32) -> SimDuration {
        // nanos = bytes * 8 * 1e9 / bps, computed in u128 to avoid overflow.
        let nanos = (size as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(nanos as u64)
    }

    /// Service rate in packets per second for packets of `size` bytes
    /// (the paper's `μ`, with 1 KB packets on 4 Mbps links: 500 pkt/s).
    pub fn service_rate_pps(&self, size: u32) -> f64 {
        self.bandwidth_bps as f64 / (size as f64 * 8.0)
    }
}

/// Outcome of offering a packet to a link queue.
#[derive(Debug, Clone, PartialEq)]
pub enum EnqueueOutcome {
    /// The packet was queued; if `starts_transmission` the caller must
    /// schedule a [`tx complete`](Link::complete_transmission) event after
    /// the returned serialization time.
    Accepted {
        /// `Some(tx_time)` when the link was idle and transmission of this
        /// packet begins immediately.
        starts_transmission: Option<SimDuration>,
    },
    /// The queue was full; the packet was tail-dropped and is returned to
    /// the caller for accounting.
    Dropped(Packet),
}

/// Runtime state of a directed link.
#[derive(Debug)]
pub struct Link {
    spec: LinkSpec,
    src: NodeId,
    dst: NodeId,
    /// Waiting packets; the head is the packet currently in service when
    /// `busy` is true.
    queue: VecDeque<Packet>,
    busy: bool,
    occupancy: TimeWeightedMean,
    forwarded_packets: u64,
    forwarded_bytes: u64,
    dropped_packets: u64,
    peak_occupancy: usize,
    /// One-entry serialization-time cache. `tx_time` costs a 128-bit
    /// division; packet sizes are near-constant in practice, so caching
    /// the last `(size, tx_time)` pair removes it from the per-packet
    /// path while returning bit-identical durations.
    tx_cache: (u32, SimDuration),
}

impl Link {
    /// Creates an idle link from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, spec: LinkSpec) -> Self {
        Link {
            spec,
            src,
            dst,
            // Full capacity up front: a link queue never exceeds its
            // spec'd capacity, so enqueue never reallocates.
            queue: VecDeque::with_capacity(spec.queue_capacity),
            busy: false,
            occupancy: TimeWeightedMean::new(SimTime::ZERO, 0.0),
            forwarded_packets: 0,
            forwarded_bytes: 0,
            dropped_packets: 0,
            peak_occupancy: 0,
            // Size 0 never occurs, so the cache starts cold.
            tx_cache: (0, SimDuration::ZERO),
        }
    }

    /// Serialization time for `size` bytes via the one-entry cache.
    fn cached_tx_time(&mut self, size: u32) -> SimDuration {
        if self.tx_cache.0 != size {
            self.tx_cache = (size, self.spec.tx_time(size));
        }
        self.tx_cache.1
    }

    /// The node this link transmits from.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The node this link delivers to.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The link's static parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Instantaneous queue occupancy in packets (waiting + in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Offers `packet` to the queue at time `now`.
    ///
    /// Tail-drops when the occupancy has reached capacity. On acceptance,
    /// if the link was idle, the packet enters service immediately and the
    /// serialization time is returned so the caller can schedule the
    /// completion event.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> EnqueueOutcome {
        if self.queue.len() >= self.spec.queue_capacity {
            self.dropped_packets += 1;
            return EnqueueOutcome::Dropped(packet);
        }
        let tx = if self.busy {
            None
        } else {
            self.busy = true;
            Some(self.cached_tx_time(packet.size))
        };
        self.queue.push_back(packet);
        self.peak_occupancy = self.peak_occupancy.max(self.queue.len());
        self.occupancy.set(now, self.queue.len() as f64);
        EnqueueOutcome::Accepted {
            starts_transmission: tx,
        }
    }

    /// Completes the in-service packet's serialization at time `now`.
    ///
    /// Returns the departed packet and, if another packet is waiting, the
    /// serialization time of the next packet (which enters service
    /// immediately).
    ///
    /// # Panics
    ///
    /// Panics if the link was not transmitting (a scheduling bug).
    pub fn complete_transmission(&mut self, now: SimTime) -> (Packet, Option<SimDuration>) {
        assert!(self.busy, "complete_transmission on an idle link");
        let packet = self
            .queue
            .pop_front()
            .expect("busy link must have a packet in service");
        self.forwarded_packets += 1;
        self.forwarded_bytes += packet.size as u64;
        self.occupancy.set(now, self.queue.len() as f64);
        let next = match self.queue.front().map(|p| p.size) {
            Some(size) => Some(self.cached_tx_time(size)),
            None => {
                self.busy = false;
                None
            }
        };
        (packet, next)
    }

    /// Closes the queue-average window at `now` and returns the
    /// time-weighted mean occupancy since the previous call (the paper's
    /// `q_avg` over one congestion epoch).
    pub fn take_queue_average(&mut self, now: SimTime) -> f64 {
        self.occupancy.restart(now)
    }

    /// Reads the time-weighted mean occupancy of the current window
    /// without restarting it.
    pub fn queue_average(&self, now: SimTime) -> f64 {
        self.occupancy.mean(now)
    }

    /// Total packets fully serialized by this link.
    pub fn forwarded_packets(&self) -> u64 {
        self.forwarded_packets
    }

    /// Total bytes fully serialized by this link.
    pub fn forwarded_bytes(&self) -> u64 {
        self.forwarded_bytes
    }

    /// Total packets tail-dropped at this link.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Highest queue occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, PacketId};

    fn pkt(id: u64) -> Packet {
        Packet::data(PacketId(id), FlowId(0), 1000, SimTime::ZERO)
    }

    fn mbps4() -> LinkSpec {
        LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
    }

    #[test]
    fn tx_time_matches_paper_numbers() {
        // 1 KB packets over 4 Mbps: 8000 bits / 4e6 bps = 2 ms, 500 pkt/s.
        let spec = mbps4();
        assert_eq!(spec.tx_time(1000), SimDuration::from_millis(2));
        assert!((spec.service_rate_pps(1000) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn idle_link_starts_transmission_immediately() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        match l.enqueue(SimTime::ZERO, pkt(0)) {
            EnqueueOutcome::Accepted {
                starts_transmission: Some(tx),
            } => assert_eq!(tx, SimDuration::from_millis(2)),
            other => panic!("unexpected outcome {other:?}"),
        }
        // Second packet queues behind the first.
        match l.enqueue(SimTime::ZERO, pkt(1)) {
            EnqueueOutcome::Accepted {
                starts_transmission: None,
            } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn completion_promotes_next_packet() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        l.enqueue(SimTime::ZERO, pkt(0));
        l.enqueue(SimTime::ZERO, pkt(1));
        let (done, next) = l.complete_transmission(SimTime::from_millis(2));
        assert_eq!(done.id, PacketId(0));
        assert_eq!(next, Some(SimDuration::from_millis(2)));
        let (done, next) = l.complete_transmission(SimTime::from_millis(4));
        assert_eq!(done.id, PacketId(1));
        assert_eq!(next, None);
        assert_eq!(l.queue_len(), 0);
        assert_eq!(l.forwarded_packets(), 2);
        assert_eq!(l.forwarded_bytes(), 2000);
    }

    #[test]
    fn tail_drop_at_capacity() {
        let spec = LinkSpec::new(4_000_000, SimDuration::ZERO, 2);
        let mut l = Link::new(NodeId(0), NodeId(1), spec);
        l.enqueue(SimTime::ZERO, pkt(0));
        l.enqueue(SimTime::ZERO, pkt(1));
        match l.enqueue(SimTime::ZERO, pkt(2)) {
            EnqueueOutcome::Dropped(p) => assert_eq!(p.id, PacketId(2)),
            other => panic!("expected drop, got {other:?}"),
        }
        assert_eq!(l.dropped_packets(), 1);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn queue_average_integrates_occupancy() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        // Occupancy 1 during [0, 2ms) then 0 during [2ms, 4ms).
        l.enqueue(SimTime::ZERO, pkt(0));
        l.complete_transmission(SimTime::from_millis(2));
        let avg = l.take_queue_average(SimTime::from_millis(4));
        assert!((avg - 0.5).abs() < 1e-9, "avg {avg}");
        // New window starts empty.
        let avg2 = l.take_queue_average(SimTime::from_millis(8));
        assert_eq!(avg2, 0.0);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        for i in 0..5 {
            l.enqueue(SimTime::ZERO, pkt(i));
        }
        l.complete_transmission(SimTime::from_millis(2));
        assert_eq!(l.peak_occupancy(), 5);
    }

    #[test]
    #[should_panic(expected = "idle link")]
    fn completing_idle_link_panics() {
        let mut l = Link::new(NodeId(0), NodeId(1), mbps4());
        l.complete_transmission(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinkSpec::new(0, SimDuration::ZERO, 1);
    }
}
