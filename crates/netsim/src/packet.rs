//! Packets and the Corelite marker they may carry.

use sim_core::time::SimTime;

use crate::ids::{FlowId, NodeId, PacketId};

/// A Corelite marker, logically distinct from — but physically piggybacked
/// on — a data packet.
///
/// The paper (§2): *"The source address of the marker is the edge router
/// that generated it, and the contents of the marker identify the packet
/// flow to which it corresponds"*, and for the stateless selector (§3.2)
/// the edge *"also puts the normalized packet transmission rate,
/// `r_n = b_g/w`, for the flow in the marker packet"*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Marker {
    /// The flow this marker belongs to.
    pub flow: FlowId,
    /// The edge router that generated the marker (the marker's source
    /// address); feedback is sent back to this node.
    pub edge: NodeId,
    /// The flow's normalized transmission rate `r_n = b_g(f)/w(f)` at the
    /// time the marker was injected, in packets per second per unit weight.
    pub normalized_rate: f64,
}

/// Transport sequencing metadata carried by packets of an ack-clocked
/// (go-back-N) flow. Open-loop sources leave [`Packet::seq`] unset and
/// take the legacy delivery path untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqInfo {
    /// Zero-based cumulative sequence number within the flow.
    pub seq: u64,
    /// Whether this is a retransmission. Retransmits keep the *original*
    /// [`Packet::sent_at`] (so flow-completion accounting sees the first
    /// attempt), and the egress echoes this flag in the ack so the
    /// sender's RTT estimator can apply Karn's rule.
    pub retransmit: bool,
}

/// A data packet traversing the network.
///
/// Marker packets are carried piggybacked in [`Packet::marker`]: they
/// consume no link capacity of their own, matching the paper's note that a
/// marker "may be physically piggybacked to a data packet". A packet may
/// also carry a CSFQ label in [`Packet::label`] when running the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique packet identifier.
    pub id: PacketId,
    /// The flow the packet belongs to.
    pub flow: FlowId,
    /// Payload size in bytes (the paper uses 1 KB packets throughout).
    pub size: u32,
    /// Piggybacked Corelite marker, if this is the `N_w`-th packet.
    pub marker: Option<Marker>,
    /// CSFQ label: the flow's estimated normalized rate, stamped by the
    /// ingress edge and re-labelled by congested core routers.
    pub label: Option<f64>,
    /// Time the ingress edge emitted the packet.
    pub sent_at: SimTime,
    /// Go-back-N sequencing metadata; `None` for open-loop traffic.
    pub seq: Option<SeqInfo>,
}

impl Packet {
    /// Creates a plain data packet.
    pub fn data(id: PacketId, flow: FlowId, size: u32, sent_at: SimTime) -> Self {
        Packet {
            id,
            flow,
            size,
            marker: None,
            label: None,
            sent_at,
            seq: None,
        }
    }

    /// Attaches a Corelite marker (builder-style).
    pub fn with_marker(mut self, marker: Marker) -> Self {
        self.marker = Some(marker);
        self
    }

    /// Attaches a CSFQ label (builder-style).
    pub fn with_label(mut self, label: f64) -> Self {
        self.label = Some(label);
        self
    }

    /// Attaches go-back-N sequencing metadata (builder-style).
    pub fn with_seq(mut self, seq: u64, retransmit: bool) -> Self {
        self.seq = Some(SeqInfo { seq, retransmit });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_attach_metadata() {
        let p = Packet::data(PacketId(1), FlowId::from_index(2), 1000, SimTime::ZERO)
            .with_marker(Marker {
                flow: FlowId::from_index(2),
                edge: NodeId(0),
                normalized_rate: 12.5,
            })
            .with_label(3.0);
        assert_eq!(p.marker.unwrap().normalized_rate, 12.5);
        assert_eq!(p.label, Some(3.0));
        assert_eq!(p.size, 1000);
    }

    #[test]
    fn data_packet_has_no_metadata() {
        let p = Packet::data(PacketId(0), FlowId::from_index(0), 1000, SimTime::ZERO);
        assert!(p.marker.is_none());
        assert!(p.label.is_none());
    }
}
