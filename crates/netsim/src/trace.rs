//! Structured event tracing.
//!
//! A [`Tracer`] installed via
//! [`TopologyBuilder::tracer`](crate::topology::TopologyBuilder::tracer)
//! observes every packet-level event the network processes — emissions,
//! hop-by-hop forwarding, drops, deliveries and control messages — in
//! simulation order. Use it to debug router logic or to export
//! packet-level traces for external analysis.
//!
//! Two implementations ship with the crate: [`CsvTracer`] writes one CSV
//! row per event to any [`std::io::Write`]; [`CountingTracer`] merely
//! tallies event kinds (cheap enough to leave on in tests).

use std::io::Write;

use sim_core::time::SimTime;

use crate::ids::{FlowId, LinkId, NodeId, PacketId};
use crate::logic::DropReason;

/// One packet-level event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A packet was accepted into `link`'s queue at its source node.
    Enqueue {
        /// The link.
        link: LinkId,
        /// The packet.
        packet: PacketId,
        /// The packet's flow.
        flow: FlowId,
        /// Queue occupancy after the enqueue, packets.
        queue_len: usize,
    },
    /// A packet was dropped.
    Drop {
        /// Node at which the drop occurred.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// The packet's flow.
        flow: FlowId,
        /// Tail drop or router-logic (policy) drop.
        reason: DropReason,
    },
    /// A packet reached its flow's egress.
    Deliver {
        /// The egress node.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// The packet's flow.
        flow: FlowId,
    },
    /// A control message (marker feedback or loss notification) was
    /// delivered to `node`.
    Control {
        /// The receiving node.
        node: NodeId,
        /// The flow the message concerns.
        flow: FlowId,
        /// `true` for marker feedback, `false` for a loss notification.
        is_feedback: bool,
    },
    /// A fault was injected (see [`FaultPlan`](crate::fault::FaultPlan)).
    Fault {
        /// What kind of fault fired.
        kind: FaultKind,
        /// The node at which the fault took effect.
        node: NodeId,
        /// The flow affected, when one is identifiable.
        flow: Option<FlowId>,
    },
}

/// The kinds of injected fault a tracer can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A control message was discarded in transit.
    ControlLost,
    /// A control message was delayed beyond its nominal delivery time.
    ControlDelayed,
    /// A piggybacked marker was removed from a data packet.
    MarkerStripped,
    /// A packet entered a flapped (down) link and was dropped.
    LinkDown,
    /// A paused router blind-forwarded a packet or deferred an event.
    RouterPaused,
}

impl TraceEvent {
    /// Short lowercase tag for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Control { .. } => "control",
            TraceEvent::Fault { .. } => "fault",
        }
    }
}

/// Observes packet-level events in simulation order.
pub trait Tracer {
    /// Called for every traced event, in non-decreasing time order.
    fn record(&mut self, now: SimTime, event: &TraceEvent);
}

/// Counts events per kind — a zero-configuration tracer for tests and
/// quick sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingTracer {
    /// Packets accepted into link queues.
    pub enqueues: u64,
    /// Packets dropped (any reason).
    pub drops: u64,
    /// Packets delivered to their egress.
    pub delivers: u64,
    /// Control messages delivered.
    pub controls: u64,
    /// Faults injected.
    pub faults: u64,
}

impl Tracer for CountingTracer {
    fn record(&mut self, _now: SimTime, event: &TraceEvent) {
        match event {
            TraceEvent::Enqueue { .. } => self.enqueues += 1,
            TraceEvent::Drop { .. } => self.drops += 1,
            TraceEvent::Deliver { .. } => self.delivers += 1,
            TraceEvent::Control { .. } => self.controls += 1,
            TraceEvent::Fault { .. } => self.faults += 1,
        }
    }
}

/// Writes one CSV row per event: `time,kind,node,link,packet,flow,extra`.
#[derive(Debug)]
pub struct CsvTracer<W: Write> {
    out: W,
    rows: u64,
}

impl<W: Write> CsvTracer<W> {
    /// Creates a tracer writing to `out`, emitting the header row
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if the header cannot be written (tracing to a failing sink
    /// is a programming error in a simulation harness).
    pub fn new(mut out: W) -> Self {
        writeln!(out, "time,kind,node,link,packet,flow,extra").expect("write trace header");
        CsvTracer { out, rows: 0 }
    }

    /// Number of data rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flushes buffered rows through to the sink. Call this before
    /// inspecting the sink mid-run when `W` buffers (e.g. a
    /// [`std::io::BufWriter`]).
    ///
    /// # Panics
    ///
    /// Panics if the sink fails.
    pub fn flush(&mut self) {
        self.out.flush().expect("flush trace sink");
    }

    /// Consumes the tracer, flushing and returning the underlying writer.
    ///
    /// Without the flush, rows buffered by `W` would be silently lost if
    /// the caller drops the writer without draining it.
    ///
    /// # Panics
    ///
    /// Panics if the sink fails to flush.
    pub fn into_inner(mut self) -> W {
        self.flush();
        self.out
    }
}

impl<W: Write> Tracer for CsvTracer<W> {
    fn record(&mut self, now: SimTime, event: &TraceEvent) {
        let t = now.as_secs_f64();
        let result = match *event {
            TraceEvent::Enqueue {
                link,
                packet,
                flow,
                queue_len,
            } => writeln!(
                self.out,
                "{t:.6},enqueue,,{link},{packet},{flow},qlen={queue_len}"
            ),
            TraceEvent::Drop {
                node,
                packet,
                flow,
                reason,
            } => writeln!(
                self.out,
                "{t:.6},drop,{node},,{packet},{flow},reason={reason:?}"
            ),
            TraceEvent::Deliver { node, packet, flow } => {
                writeln!(self.out, "{t:.6},deliver,{node},,{packet},{flow},")
            }
            TraceEvent::Control {
                node,
                flow,
                is_feedback,
            } => writeln!(
                self.out,
                "{t:.6},control,{node},,,{flow},feedback={is_feedback}"
            ),
            TraceEvent::Fault { kind, node, flow } => {
                let flow = flow.map(|f| f.to_string()).unwrap_or_default();
                writeln!(self.out, "{t:.6},fault,{node},,,{flow},kind={kind:?}")
            }
        };
        result.expect("write trace row");
        self.rows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that records what reached it and how often it was flushed.
    #[derive(Debug, Default)]
    struct FlushSink {
        data: Vec<u8>,
        flushes: usize,
    }

    impl Write for FlushSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.data.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn csv_tracer_flushes_explicitly_and_on_into_inner() {
        let mut tracer = CsvTracer::new(std::io::BufWriter::new(FlushSink::default()));
        tracer.record(
            SimTime::from_secs(1),
            &TraceEvent::Deliver {
                node: NodeId::from_index(0),
                packet: PacketId::from_sequence(1),
                flow: FlowId::from_index(0),
            },
        );
        tracer.flush();
        let buf = tracer.into_inner();
        let sink = buf.into_inner().expect("buffer already flushed");
        assert!(
            sink.flushes >= 2,
            "expected flush() and into_inner() to each reach the sink, saw {}",
            sink.flushes
        );
        let text = String::from_utf8(sink.data).unwrap();
        assert_eq!(text.lines().count(), 2, "header + one row reached the sink");
        assert!(text.lines().nth(1).unwrap().contains("deliver"));
    }

    #[test]
    fn counting_tracer_tallies_kinds() {
        let mut t = CountingTracer::default();
        let ev = TraceEvent::Deliver {
            node: NodeId::from_index(1),
            packet: PacketId::from_sequence(7),
            flow: FlowId::from_index(0),
        };
        t.record(SimTime::ZERO, &ev);
        t.record(SimTime::ZERO, &ev);
        t.record(
            SimTime::ZERO,
            &TraceEvent::Drop {
                node: NodeId::from_index(1),
                packet: PacketId::from_sequence(8),
                flow: FlowId::from_index(0),
                reason: DropReason::Tail,
            },
        );
        assert_eq!(t.delivers, 2);
        assert_eq!(t.drops, 1);
        assert_eq!(t.enqueues, 0);
        assert_eq!(ev.kind(), "deliver");
    }

    #[test]
    fn csv_tracer_writes_rows() {
        let mut tracer = CsvTracer::new(Vec::new());
        tracer.record(
            SimTime::from_millis(1500),
            &TraceEvent::Enqueue {
                link: LinkId::from_index(2),
                packet: PacketId::from_sequence(9),
                flow: FlowId::from_index(3),
                queue_len: 4,
            },
        );
        tracer.record(
            SimTime::from_secs(2),
            &TraceEvent::Control {
                node: NodeId::from_index(0),
                flow: FlowId::from_index(3),
                is_feedback: true,
            },
        );
        assert_eq!(tracer.rows(), 2);
        let text = String::from_utf8(tracer.into_inner()).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time,kind,node,link,packet,flow,extra"));
        assert_eq!(lines.next(), Some("1.500000,enqueue,,l2,p9,f3,qlen=4"));
        assert_eq!(lines.next(), Some("2.000000,control,n0,,,f3,feedback=true"));
    }
}
