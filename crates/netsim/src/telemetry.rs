//! Control-plane telemetry: epoch-grained introspection probes.
//!
//! The packet-level [`Tracer`](crate::trace::Tracer) sees every data-plane
//! event; it is blind to the *control plane* — the congestion-detector and
//! selector scalars (`q_avg`, `r_av`, `w_av`, `p_w`) and the per-flow rate
//! machinery (`b_g`, the phase machine, the per-epoch feedback maximum
//! `m(f)`) whose evolution is what a rate-control scheme actually is. A
//! [`Probe`] installed via
//! [`TopologyBuilder::probe`](crate::topology::TopologyBuilder::probe)
//! receives named per-epoch [`Sample`]s published by router logic through
//! [`Ctx::publish`](crate::logic::Ctx::publish).
//!
//! # The zero-allocation contract
//!
//! Publishing happens inside the per-event hot path (epoch timers fire
//! thousands of times per run), so the whole pipeline is allocation-free:
//!
//! * [`Sample`] is `Copy` and its name is a `&'static str` — building one
//!   never touches the heap;
//! * [`Ctx::publish`](crate::logic::Ctx::publish) with no probe installed
//!   is a single `Option` check — a disabled run performs zero extra work
//!   and zero allocations per event;
//! * [`RingProbe`] records into a buffer preallocated at construction,
//!   overwriting the oldest sample (and counting the loss) once full.
//!
//! The contract is enforced twice: the `hot-alloc` simlint rule covers
//! this module's `record` path statically, and
//! `crates/netsim/tests/zero_alloc.rs` pins it with a counting global
//! allocator, probe installed and publishing.
//!
//! Exporting ([`RingProbe::to_jsonl`], [`RingProbe::series`]) runs after
//! the simulation and may allocate freely.

use std::fmt::Write as _;

use sim_core::stats::TimeSeries;
use sim_core::time::SimTime;

use crate::ids::{FlowId, LinkId, NodeId};

/// One named control-plane measurement published by router logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Metric name (`"q_avg"`, `"r_av"`, `"b_g"`, ...). Static so that
    /// building a sample on the hot path never allocates.
    pub name: &'static str,
    /// The measured value.
    pub value: f64,
    /// The flow the sample concerns, for per-flow metrics.
    pub flow: Option<FlowId>,
    /// The link the sample concerns, for per-link metrics.
    pub link: Option<LinkId>,
}

impl Sample {
    /// A node-scoped scalar sample.
    pub fn scalar(name: &'static str, value: f64) -> Self {
        Sample {
            name,
            value,
            flow: None,
            link: None,
        }
    }

    /// A per-flow sample (controller state such as `b_g` or `m(f)`).
    pub fn for_flow(name: &'static str, flow: FlowId, value: f64) -> Self {
        Sample {
            name,
            value,
            flow: Some(flow),
            link: None,
        }
    }

    /// A per-link sample (detector and selector state such as `q_avg`).
    pub fn for_link(name: &'static str, link: LinkId, value: f64) -> Self {
        Sample {
            name,
            value,
            flow: None,
            link: Some(link),
        }
    }
}

/// A recorded sample: when and where it was published.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// Publication time.
    pub time: SimTime,
    /// The node whose logic published the sample.
    pub node: NodeId,
    /// The sample itself.
    pub sample: Sample,
}

impl ProbeRecord {
    /// Renders the record as one JSON object (one JSONL line, without
    /// the trailing newline). Field order and float formatting are fixed,
    /// so equal streams render byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"t\":{:.6},\"node\":{},\"name\":\"{}\",\"value\":{}",
            self.time.as_secs_f64(),
            self.node.index(),
            self.sample.name,
            self.sample.value
        );
        if let Some(flow) = self.sample.flow {
            let _ = write!(out, ",\"flow\":{}", flow.index());
        }
        if let Some(link) = self.sample.link {
            let _ = write!(out, ",\"link\":{}", link.index());
        }
        out.push('}');
        out
    }
}

/// Observes control-plane samples in publication order.
///
/// The epoch-grained analogue of [`Tracer`](crate::trace::Tracer):
/// implementations must not allocate in [`record`](Probe::record) if they
/// are to preserve the engine's zero-alloc contract.
pub trait Probe {
    /// Called for every published sample, in non-decreasing time order.
    fn record(&mut self, now: SimTime, node: NodeId, sample: &Sample);
}

/// Counts published samples — the cheapest possible probe, for tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// Samples published so far.
    pub samples: u64,
}

impl Probe for CountingProbe {
    fn record(&mut self, _now: SimTime, _node: NodeId, _sample: &Sample) {
        self.samples += 1;
    }
}

/// A probe recording into a preallocated ring buffer.
///
/// Recording never allocates: the backing storage is reserved at
/// construction, and once `capacity` records have been written the oldest
/// are overwritten (the [`dropped`](RingProbe::dropped) counter tracks how
/// many were lost). Size the ring for the run — per-epoch publication
/// rates are small and predictable.
#[derive(Debug, Clone)]
pub struct RingProbe {
    records: Vec<ProbeRecord>,
    capacity: usize,
    /// Next write position once the ring is full (the oldest record).
    head: usize,
    dropped: u64,
}

impl RingProbe {
    /// Creates a ring holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "probe ring must hold at least one record");
        RingProbe {
            records: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The ring's capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records lost to ring overflow (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the held records in publication order (oldest
    /// first).
    pub fn iter(&self) -> impl Iterator<Item = &ProbeRecord> {
        let (older, newer) = self.records.split_at(self.head.min(self.records.len()));
        newer.iter().chain(older.iter())
    }

    /// Extracts the time series of metric `name`, optionally filtered by
    /// publishing node, flow, and link.
    pub fn series(
        &self,
        name: &str,
        node: Option<NodeId>,
        flow: Option<FlowId>,
        link: Option<LinkId>,
    ) -> TimeSeries {
        let mut out = TimeSeries::new();
        for r in self.iter() {
            if r.sample.name == name
                && node.is_none_or(|n| r.node == n)
                && flow.is_none_or(|f| r.sample.flow == Some(f))
                && link.is_none_or(|l| r.sample.link == Some(l))
            {
                out.push(r.time, r.sample.value);
            }
        }
        out
    }

    /// Renders the held records as JSONL, one record per line, in
    /// publication order. Deterministic runs render byte-identically.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.iter() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

impl Probe for RingProbe {
    fn record(&mut self, now: SimTime, node: NodeId, sample: &Sample) {
        let record = ProbeRecord {
            time: now,
            node,
            sample: *sample,
        };
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn sample(name: &'static str, value: f64) -> Sample {
        Sample::scalar(name, value)
    }

    #[test]
    fn ring_records_in_order_until_capacity() {
        let mut p = RingProbe::with_capacity(8);
        for i in 0..5 {
            p.record(t(i as f64), NodeId::from_index(0), &sample("x", i as f64));
        }
        assert_eq!(p.len(), 5);
        assert_eq!(p.dropped(), 0);
        let values: Vec<f64> = p.iter().map(|r| r.sample.value).collect();
        assert_eq!(values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut p = RingProbe::with_capacity(3);
        for i in 0..5 {
            p.record(t(i as f64), NodeId::from_index(0), &sample("x", i as f64));
        }
        assert_eq!(p.len(), 3);
        assert_eq!(p.dropped(), 2);
        let values: Vec<f64> = p.iter().map(|r| r.sample.value).collect();
        assert_eq!(values, vec![2.0, 3.0, 4.0], "oldest records are evicted");
    }

    #[test]
    fn series_filters_by_name_node_flow_and_link() {
        let mut p = RingProbe::with_capacity(16);
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let f0 = FlowId::from_index(0);
        let l2 = LinkId::from_index(2);
        p.record(t(1.0), n0, &Sample::for_flow("b_g", f0, 10.0));
        p.record(t(1.0), n1, &Sample::for_link("q_avg", l2, 3.0));
        p.record(t(2.0), n0, &Sample::for_flow("b_g", f0, 12.0));
        p.record(t(2.0), n0, &sample("other", 99.0));
        let bg = p.series("b_g", Some(n0), Some(f0), None);
        assert_eq!(bg.len(), 2);
        assert_eq!(bg.last_value(), Some(12.0));
        let q = p.series("q_avg", None, None, Some(l2));
        assert_eq!(q.len(), 1);
        assert!(p.series("b_g", Some(n1), None, None).is_empty());
    }

    #[test]
    fn jsonl_is_stable_and_parseable_shaped() {
        let mut p = RingProbe::with_capacity(4);
        p.record(
            t(1.5),
            NodeId::from_index(3),
            &Sample::for_link("q_avg", LinkId::from_index(2), 0.25),
        );
        p.record(
            t(2.0),
            NodeId::from_index(1),
            &Sample::for_flow("b_g", FlowId::from_index(0), 42.0),
        );
        let jsonl = p.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"t\":1.500000,\"node\":3,\"name\":\"q_avg\",\"value\":0.25,\"link\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":2.000000,\"node\":1,\"name\":\"b_g\",\"value\":42,\"flow\":0}"
        );
        // Rendering twice is byte-identical.
        assert_eq!(jsonl, p.to_jsonl());
    }

    #[test]
    fn counting_probe_counts() {
        let mut p = CountingProbe::default();
        p.record(t(0.0), NodeId::from_index(0), &sample("x", 1.0));
        p.record(t(1.0), NodeId::from_index(0), &sample("x", 2.0));
        assert_eq!(p.samples, 2);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_capacity_rejected() {
        RingProbe::with_capacity(0);
    }
}
