//! Built-in measurement: per-flow service and drops, per-link statistics.
//!
//! The monitors regenerate exactly the quantities the paper plots:
//! instantaneous ("alloted") rates come from the router logic's
//! [`crate::logic::LogicReport`]; delivered goodput and cumulative
//! service (Figure 4) come from the per-flow monitors behind
//! [`FlowReport`].

use sim_core::stats::{LogHistogram, TimeSeries, WindowedRate};
use sim_core::time::{SimDuration, SimTime};

use crate::churn::ChurnReport;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::logic::{DropReason, LogicReport};
use crate::slab::DenseMap;

/// Per-flow measurement state, updated by the network on deliveries and
/// drops.
#[derive(Debug)]
pub(crate) struct FlowMonitor {
    goodput: WindowedRate,
    cumulative: TimeSeries,
    delivered_packets: u64,
    delivered_bytes: u64,
    duplicate_packets: u64,
    duplicate_bytes: u64,
    tail_drops: u64,
    policy_drops: u64,
    fault_drops: u64,
    delay: LogHistogram,
    last_cumulative_window: SimTime,
    window: SimDuration,
    first_delivery: Option<SimTime>,
    last_delivery: Option<SimTime>,
}

impl FlowMonitor {
    pub(crate) fn new(start: SimTime, window: SimDuration) -> Self {
        FlowMonitor {
            goodput: WindowedRate::new(start, window),
            cumulative: TimeSeries::new(),
            delivered_packets: 0,
            delivered_bytes: 0,
            duplicate_packets: 0,
            duplicate_bytes: 0,
            tail_drops: 0,
            policy_drops: 0,
            fault_drops: 0,
            delay: LogHistogram::new(),
            last_cumulative_window: start,
            window,
            first_delivery: None,
            last_delivery: None,
        }
    }

    pub(crate) fn record_delivery(&mut self, now: SimTime, bytes: u32, delay: SimDuration) {
        self.roll_cumulative(now);
        self.goodput.record(now, 1.0);
        self.delivered_packets += 1;
        self.delivered_bytes += bytes as u64;
        self.delay.record(delay.as_secs_f64());
        if self.first_delivery.is_none() {
            self.first_delivery = Some(now);
        }
        self.last_delivery = Some(now);
    }

    /// Accounts a packet that reached the egress but is *not* new
    /// in-order data: a go-back-N redelivery (sequence already
    /// acknowledged) or an out-of-order arrival the GBN sink discards.
    /// Deliberately touches none of the goodput/cumulative/delay state —
    /// redelivered windows must not double-count toward goodput.
    pub(crate) fn record_duplicate(&mut self, bytes: u32) {
        self.duplicate_packets += 1;
        self.duplicate_bytes += bytes as u64;
    }

    /// Time of the first delivered packet, if any (churn settling).
    pub(crate) fn first_delivery(&self) -> Option<SimTime> {
        self.first_delivery
    }

    /// Time of the most recent delivered packet, if any (churn FCT).
    pub(crate) fn last_delivery(&self) -> Option<SimTime> {
        self.last_delivery
    }

    /// Packets delivered so far (read at churn retirement, before the
    /// monitor is replaced by the slot's next occupant).
    pub(crate) fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    pub(crate) fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::Tail => self.tail_drops += 1,
            DropReason::Policy => self.policy_drops += 1,
            DropReason::Fault => self.fault_drops += 1,
        }
    }

    /// Emits cumulative-service points for every measurement window that
    /// has fully elapsed before `now`.
    fn roll_cumulative(&mut self, now: SimTime) {
        while now >= self.last_cumulative_window + self.window {
            let end = self.last_cumulative_window + self.window;
            self.cumulative.push(end, self.delivered_packets as f64);
            self.last_cumulative_window = end;
        }
    }

    pub(crate) fn finish(
        mut self,
        end: SimTime,
    ) -> (TimeSeries, TimeSeries, LogHistogram, FlowTotals) {
        self.roll_cumulative(end);
        // When `end` lands exactly on a window boundary, `roll_cumulative`
        // has already emitted the point at `end`; pushing again would
        // duplicate the final sample (TimeSeries accepts equal timestamps)
        // and double-weight the last bucket in resampling consumers.
        // (`WindowedRate::finish` has no analogous hazard: `roll_to` only
        // closes fully elapsed windows and drops the final partial one.)
        if self.cumulative.iter().last().map(|(t, _)| t) != Some(end) {
            self.cumulative.push(end, self.delivered_packets as f64);
        }
        let goodput = self.goodput.finish(end);
        let totals = FlowTotals {
            delivered_packets: self.delivered_packets,
            delivered_bytes: self.delivered_bytes,
            duplicate_packets: self.duplicate_packets,
            duplicate_bytes: self.duplicate_bytes,
            tail_drops: self.tail_drops,
            policy_drops: self.policy_drops,
            fault_drops: self.fault_drops,
            mean_delay_secs: self.delay.mean().unwrap_or(0.0),
        };
        (goodput, self.cumulative, self.delay, totals)
    }
}

/// Scalar per-flow totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowTotals {
    /// Packets delivered to the flow's egress.
    pub delivered_packets: u64,
    /// Bytes delivered to the flow's egress.
    pub delivered_bytes: u64,
    /// Packets that reached the egress already-acknowledged or out of
    /// order (go-back-N redeliveries); excluded from goodput.
    pub duplicate_packets: u64,
    /// Bytes of such packets.
    pub duplicate_bytes: u64,
    /// Packets lost to full queues.
    pub tail_drops: u64,
    /// Packets dropped by router logic (CSFQ's probabilistic dropper).
    pub policy_drops: u64,
    /// Packets lost to injected faults (flapped links).
    pub fault_drops: u64,
    /// Mean end-to-end delay of delivered packets, in seconds.
    pub mean_delay_secs: f64,
}

impl FlowTotals {
    /// All drops regardless of cause.
    pub fn total_drops(&self) -> u64 {
        self.tail_drops + self.policy_drops + self.fault_drops
    }
}

/// End-of-run measurements for one flow.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The flow.
    pub id: FlowId,
    /// Its rate weight `w(f)`.
    pub weight: u32,
    /// Delivered goodput per measurement window, packets per second.
    pub goodput: TimeSeries,
    /// Cumulative delivered packets, sampled per measurement window
    /// (Figure 4's "number of packets successfully sent").
    pub cumulative: TimeSeries,
    /// Packets delivered to the egress.
    pub delivered_packets: u64,
    /// Bytes delivered to the egress.
    pub delivered_bytes: u64,
    /// Packets that reached the egress already-acknowledged or out of
    /// order (go-back-N redeliveries); excluded from goodput.
    pub duplicate_packets: u64,
    /// Bytes of such packets.
    pub duplicate_bytes: u64,
    /// Packets lost to full queues.
    pub tail_drops: u64,
    /// Packets dropped by router logic.
    pub policy_drops: u64,
    /// Packets lost to injected faults (flapped links).
    pub fault_drops: u64,
    /// Mean end-to-end delay of delivered packets, seconds.
    pub mean_delay_secs: f64,
    /// Distribution of end-to-end delays of delivered packets, seconds.
    pub delay: LogHistogram,
}

impl FlowReport {
    /// All drops regardless of cause.
    pub fn total_drops(&self) -> u64 {
        self.tail_drops + self.policy_drops + self.fault_drops
    }

    /// The `q`-quantile of the end-to-end delay in seconds, or `None` if
    /// no packet was delivered.
    pub fn delay_quantile(&self, q: f64) -> Option<f64> {
        self.delay.quantile(q)
    }

    /// Mean goodput over `[from, to)`, packets per second.
    pub fn mean_goodput_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.goodput.mean_in(from, to)
    }
}

/// End-of-run measurements for one link.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// The link.
    pub id: LinkId,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Packets fully serialized.
    pub forwarded_packets: u64,
    /// Bytes fully serialized.
    pub forwarded_bytes: u64,
    /// Packets tail-dropped at this link's queue.
    pub dropped_packets: u64,
    /// Highest queue occupancy observed, packets.
    pub peak_occupancy: usize,
    /// Mean utilization of the link over the run, in `[0, 1]`.
    pub utilization: f64,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated end time.
    pub end: SimTime,
    /// Per-flow measurements, indexed by flow id.
    pub flows: Vec<FlowReport>,
    /// Per-link measurements, indexed by link id.
    pub links: Vec<LinkReport>,
    /// Logic-exported measurements per node (allotted-rate series live
    /// here, under the node hosting the flow's ingress edge logic).
    pub logic: DenseMap<NodeId, LogicReport>,
    /// Total events processed.
    pub events_processed: u64,
    /// Churn-process measurements, when a churn generator was installed
    /// (flow slots then cover static flows plus the churn peak).
    pub churn: Option<ChurnReport>,
}

impl SimReport {
    /// Looks up a flow's report.
    ///
    /// # Panics
    ///
    /// Panics if `flow` does not exist.
    pub fn flow(&self, flow: FlowId) -> &FlowReport {
        &self.flows[flow.index()]
    }

    /// Returns the allotted-rate series recorded by whichever node's logic
    /// reported one for `flow` (the flow's ingress edge router), if any.
    pub fn allotted_rate(&self, flow: FlowId) -> Option<&TimeSeries> {
        self.logic.values().find_map(|r| r.flow_rates.get(&flow))
    }

    /// Sums a named logic counter across all nodes.
    pub fn counter_total(&self, name: &str) -> f64 {
        self.logic
            .values()
            .filter_map(|r| r.counters.get(name))
            .sum()
    }

    /// Total packets dropped anywhere in the network.
    pub fn total_drops(&self) -> u64 {
        self.flows.iter().map(FlowReport::total_drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn monitor_accumulates_deliveries_and_drops() {
        let mut m = FlowMonitor::new(t(0.0), SimDuration::from_secs(1));
        m.record_delivery(t(0.2), 1000, SimDuration::from_millis(120));
        m.record_delivery(t(0.7), 1000, SimDuration::from_millis(80));
        m.record_drop(DropReason::Tail);
        m.record_drop(DropReason::Policy);
        m.record_drop(DropReason::Policy);
        let (goodput, cumulative, delay, totals) = m.finish(t(2.0));
        assert_eq!(totals.delivered_packets, 2);
        assert_eq!(totals.delivered_bytes, 2000);
        assert_eq!(totals.tail_drops, 1);
        assert_eq!(totals.policy_drops, 2);
        assert_eq!(totals.total_drops(), 3);
        assert!((totals.mean_delay_secs - 0.1).abs() < 1e-9);
        assert_eq!(delay.count(), 2);
        assert!(delay.quantile(1.0).unwrap() >= 0.12 - 1e-9);
        // Window [0,1): 2 pkt/s; window [1,2): 0.
        let g: Vec<f64> = goodput.iter().map(|(_, v)| v).collect();
        assert_eq!(g, vec![2.0, 0.0]);
        // Cumulative sampled at window ends plus the final instant.
        let c: Vec<(SimTime, f64)> = cumulative.iter().collect();
        assert_eq!(c.last(), Some(&(t(2.0), 2.0)));
    }

    #[test]
    fn finish_on_window_boundary_does_not_duplicate_sample() {
        let mut m = FlowMonitor::new(t(0.0), SimDuration::from_secs(1));
        m.record_delivery(t(0.2), 1000, SimDuration::from_millis(10));
        m.record_delivery(t(1.4), 1000, SimDuration::from_millis(10));
        // `end` falls exactly on a window edge: the rolled point at 2.0
        // must not be followed by a second sample at the same instant.
        let (_, cumulative, _, _) = m.finish(t(2.0));
        let c: Vec<(SimTime, f64)> = cumulative.iter().collect();
        assert_eq!(c, vec![(t(1.0), 1.0), (t(2.0), 2.0)]);
    }

    #[test]
    fn finish_off_boundary_still_emits_final_sample() {
        let mut m = FlowMonitor::new(t(0.0), SimDuration::from_secs(1));
        m.record_delivery(t(0.2), 1000, SimDuration::from_millis(10));
        let (_, cumulative, _, _) = m.finish(t(1.5));
        let c: Vec<(SimTime, f64)> = cumulative.iter().collect();
        assert_eq!(c, vec![(t(1.0), 1.0), (t(1.5), 1.0)]);
    }

    #[test]
    fn monitor_empty_flow_reports_zeroes() {
        let m = FlowMonitor::new(t(0.0), SimDuration::from_secs(1));
        let (_, _, _, totals) = m.finish(t(1.0));
        assert_eq!(totals.delivered_packets, 0);
        assert_eq!(totals.mean_delay_secs, 0.0);
    }
}
