//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the dirty-network conditions a run should
//! experience — lost or delayed control messages, markers stripped in
//! transit, links flapping down, core routers whose control plane pauses —
//! and the network applies it inside the event loop. All randomness comes
//! from dedicated [`DetRng`] streams derived from the experiment seed
//! under `fault.*` labels, so
//!
//! * the same seed and plan always produce the same run, and
//! * adding faults never perturbs the draw sequences of existing
//!   components (sources, marker selectors, ...).
//!
//! Every injected fault is surfaced to the installed tracer as a
//! [`TraceEvent::Fault`](crate::trace::TraceEvent::Fault), and packets
//! dropped by a downed link are accounted under
//! [`DropReason::Fault`](crate::logic::DropReason::Fault).
//!
//! Fault semantics:
//!
//! * **Control loss** (`control_loss`): each control message (marker
//!   feedback or loss notification) is independently lost with the given
//!   probability — the paper's "soft state" argument is that losing
//!   markers degrades fairness gracefully (§3.2).
//! * **Control delay/jitter** (`control_delay`): every surviving control
//!   message is delayed by a fixed extra amount plus a uniform draw in
//!   `[0, jitter)`.
//! * **Marker strip** (`marker_loss`): a marker piggybacked on a packet
//!   entering the given link is removed with the given probability; the
//!   data packet itself survives (a corrupted or policed DS field).
//! * **Link flap** (`flap`): packets entering the link during the window
//!   are dropped (fault drops); the link carries traffic again from the
//!   window's end.
//! * **Router pause** (`pause`): the node's control plane stops for the
//!   window — arriving packets are forwarded blindly along their path
//!   (no marking, no detection), control messages addressed to the node
//!   are lost, and its timers and flow events are deferred to the
//!   window's end, where self-rescheduling timer chains resume.

use sim_core::rng::DetRng;
use sim_core::time::{SimDuration, SimTime};

use crate::ids::{LinkId, NodeId};

/// A half-open window `[from, until)` of virtual time during which a
/// fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant the fault is over.
    pub until: SimTime,
}

impl FaultWindow {
    /// Creates a window from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fault window must end after it starts");
        FaultWindow { from, until }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// A declarative description of the faults to inject into a run.
///
/// Build one with the fluent setters and install it via
/// [`TopologyBuilder::faults`](crate::topology::TopologyBuilder::faults):
///
/// ```
/// use netsim::fault::FaultPlan;
/// use netsim::ids::LinkId;
/// use sim_core::time::SimTime;
///
/// let plan = FaultPlan::new()
///     .control_loss(0.2)
///     .flap(
///         LinkId::from_index(0),
///         SimTime::from_secs(10),
///         SimTime::from_secs(12),
///     );
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any control message is lost.
    pub control_loss: f64,
    /// Fixed extra delay added to every surviving control message.
    pub control_delay: SimDuration,
    /// Uniform jitter bound: each surviving control message is further
    /// delayed by a draw in `[0, control_jitter)`.
    pub control_jitter: SimDuration,
    /// Per-link probability that a piggybacked marker is stripped in
    /// transit (the data packet survives).
    pub marker_loss: Vec<(LinkId, f64)>,
    /// Windows during which the link drops every packet entering it.
    pub flaps: Vec<(LinkId, FaultWindow)>,
    /// Windows during which the node's control plane is paused.
    pub pauses: Vec<(NodeId, FaultWindow)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.control_loss <= 0.0
            && self.control_delay.is_zero()
            && self.control_jitter.is_zero()
            && self.marker_loss.is_empty()
            && self.flaps.is_empty()
            && self.pauses.is_empty()
    }

    /// Sets the control-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn control_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "control loss probability must be in [0, 1], got {p}"
        );
        self.control_loss = p;
        self
    }

    /// Sets the extra control delay and its uniform jitter bound.
    pub fn control_delay(mut self, delay: SimDuration, jitter: SimDuration) -> Self {
        self.control_delay = delay;
        self.control_jitter = jitter;
        self
    }

    /// Adds a marker-strip probability for `link`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn marker_loss(mut self, link: LinkId, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "marker loss probability must be in [0, 1], got {p}"
        );
        self.marker_loss.push((link, p));
        self
    }

    /// Adds a flap window for `link`: packets entering the link during
    /// `[from, until)` are dropped.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn flap(mut self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        self.flaps.push((link, FaultWindow::new(from, until)));
        self
    }

    /// Adds a pause window for `node`'s control plane.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn pause(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.pauses.push((node, FaultWindow::new(from, until)));
        self
    }
}

/// Runtime fault state owned by the network: the plan plus its dedicated
/// random streams.
///
/// Control-plane draws come from one substream per *sending* node and
/// marker-strip draws from one substream per affected link, so each
/// stream is consumed entirely by one execution site: a topology shard
/// that only executes its own nodes still reproduces the exact draw
/// sequence of the serial run, without observing any other shard's
/// traffic.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// One control stream per node, indexed by node; empty when the plan
    /// has no control faults.
    control_rngs: Vec<DetRng>,
    /// One marker stream per link, populated only for links the plan
    /// names.
    marker_rngs: Vec<Option<DetRng>>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, seed: u64, nodes: usize, links: usize) -> Self {
        let control_faulty = plan.control_loss > 0.0
            || !plan.control_delay.is_zero()
            || !plan.control_jitter.is_zero();
        let control_rngs = if control_faulty {
            (0..nodes)
                .map(|n| DetRng::substream(seed, "fault.control", n as u64))
                .collect()
        } else {
            Vec::new()
        };
        let mut marker_rngs: Vec<Option<DetRng>> = (0..links).map(|_| None).collect();
        for &(link, p) in &plan.marker_loss {
            if p > 0.0 && marker_rngs[link.index()].is_none() {
                marker_rngs[link.index()] =
                    Some(DetRng::substream(seed, "fault.marker", link.index() as u64));
            }
        }
        FaultState {
            plan,
            control_rngs,
            marker_rngs,
        }
    }

    /// Decides whether one control message sent by `from` is lost.
    pub(crate) fn control_lost(&mut self, from: NodeId) -> bool {
        self.plan.control_loss > 0.0
            && self.control_rngs[from.index()].bernoulli(self.plan.control_loss)
    }

    /// The extra delay one surviving control message sent by `from`
    /// experiences.
    pub(crate) fn control_extra_delay(&mut self, from: NodeId) -> SimDuration {
        let mut extra = self.plan.control_delay;
        if !self.plan.control_jitter.is_zero() {
            let jitter =
                self.plan.control_jitter.as_secs_f64() * self.control_rngs[from.index()].next_f64();
            extra += SimDuration::from_secs_f64(jitter);
        }
        extra
    }

    /// Decides whether a marker entering `link` is stripped.
    pub(crate) fn marker_stripped(&mut self, link: LinkId) -> bool {
        let p = self
            .plan
            .marker_loss
            .iter()
            .filter(|(l, _)| *l == link)
            .map(|(_, p)| *p)
            .fold(0.0f64, f64::max);
        p > 0.0
            && self.marker_rngs[link.index()]
                .as_mut()
                .expect("marker stream exists for every configured link")
                .bernoulli(p)
    }

    /// Whether `link` is flapped down at `now`.
    pub(crate) fn link_down(&self, link: LinkId, now: SimTime) -> bool {
        self.plan
            .flaps
            .iter()
            .any(|(l, w)| *l == link && w.contains(now))
    }

    /// If `node`'s control plane is paused at `now`, the instant it
    /// resumes.
    pub(crate) fn paused_until(&self, node: NodeId, now: SimTime) -> Option<SimTime> {
        self.plan
            .pauses
            .iter()
            .filter(|(n, w)| *n == node && w.contains(now))
            .map(|(_, w)| w.until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().control_loss(0.1).is_empty());
        assert!(!FaultPlan::new()
            .control_delay(SimDuration::from_millis(10), SimDuration::ZERO)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_loss_rejected() {
        FaultPlan::new().control_loss(1.5);
    }

    #[test]
    #[should_panic(expected = "after it starts")]
    fn inverted_window_rejected() {
        FaultWindow::new(SimTime::from_secs(5), SimTime::from_secs(5));
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(!w.contains(SimTime::from_millis(999)));
        assert!(w.contains(SimTime::from_secs(1)));
        assert!(w.contains(SimTime::from_millis(1999)));
        assert!(!w.contains(SimTime::from_secs(2)));
    }

    #[test]
    fn fault_streams_are_deterministic() {
        let plan = FaultPlan::new().control_loss(0.5);
        let mut a = FaultState::new(plan.clone(), 7, 2, 0);
        let mut b = FaultState::new(plan, 7, 2, 0);
        let n0 = NodeId::from_index(0);
        let draws_a: Vec<bool> = (0..64).map(|_| a.control_lost(n0)).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.control_lost(n0)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&l| l) && draws_a.iter().any(|&l| !l));
        // Per-node streams are independent: another sender draws its own
        // sequence, unaffected by node 0's consumption.
        let n1 = NodeId::from_index(1);
        let draws_a1: Vec<bool> = (0..64).map(|_| a.control_lost(n1)).collect();
        let mut c = FaultState::new(FaultPlan::new().control_loss(0.5), 7, 2, 0);
        let draws_c1: Vec<bool> = (0..64).map(|_| c.control_lost(n1)).collect();
        assert_eq!(draws_a1, draws_c1);
    }

    #[test]
    fn pause_lookup_returns_latest_end() {
        let n = NodeId::from_index(2);
        let plan = FaultPlan::new()
            .pause(n, SimTime::from_secs(1), SimTime::from_secs(3))
            .pause(n, SimTime::from_secs(2), SimTime::from_secs(5));
        let state = FaultState::new(plan, 1, 4, 0);
        assert_eq!(
            state.paused_until(n, SimTime::from_millis(2500)),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(state.paused_until(n, SimTime::from_secs(6)), None);
        assert_eq!(
            state.paused_until(NodeId::from_index(0), SimTime::from_secs(2)),
            None
        );
    }

    #[test]
    fn marker_strip_uses_per_link_probability() {
        let l0 = LinkId::from_index(0);
        let l1 = LinkId::from_index(1);
        let mut state = FaultState::new(FaultPlan::new().marker_loss(l0, 1.0), 3, 0, 2);
        assert!(state.marker_stripped(l0));
        assert!(!state.marker_stripped(l1));
    }
}
