//! Sharded conservative-parallel execution: one simulation, many cores,
//! byte-identical output.
//!
//! # Partitioning
//!
//! [`Partition::compute`] cuts the topology *at links*: nodes joined by
//! zero-delay links are fused into one group (a cut there would admit
//! same-instant cross-shard causality, destroying any lookahead), groups
//! are ordered by their minimum node index, and contiguous runs of
//! groups are dealt to shards so each holds roughly `nodes / shards`
//! nodes. The partition is a pure function of `(shards, topology)` — no
//! randomness, no iteration-order dependence — pinned by a unit test.
//!
//! # Lookahead and epochs
//!
//! Every cross-shard event travels a cut link, so it fires at least
//! `L = min cut-link propagation delay` after the instant it was pushed.
//! That is the conservative *lookahead promise* of classic null-message
//! PDES: if every shard has executed all events strictly before time
//! `t`, no event it has yet to send can fire before `t + L`. The
//! executor therefore runs barrier-synchronised epochs of width `L`:
//!
//! ```text
//! while t + L < end:  run_before(t + L); exchange mailboxes; t += L
//! loop:               run_until(end); exchange; stop when nothing moved
//! ```
//!
//! [`run_before`](Network::run_before) executes *strictly* before the
//! boundary because events at exactly `t + L` may still arrive from a
//! peer at the next exchange. The drain loop settles events scheduled at
//! or beyond the last boundary; each round every shard processes what it
//! has and exchanges again, until a round moves zero events (the count
//! is agreed through a double-buffered atomic, so every worker leaves
//! the loop on the same round).
//!
//! # Why the output is byte-identical to the serial engine
//!
//! Every event carries a canonical key assigned at *push* time from the
//! pushing site's private counter (see
//! [`KEY_SITE_SHIFT`](crate::network::KEY_SITE_SHIFT)), and both engines
//! pop in `(time, key)` order. Sites are replicated deterministically:
//! a shard runs the *same* pushes for the nodes it owns as the serial
//! engine does, in the same order, so the same logical event gets the
//! same key everywhere and the merged execution is a permutation-free
//! reordering of the serial one. Mailbox delivery order is irrelevant —
//! injected events re-sort by `(time, key)` in the receiving wheel.
//! Float-order hazards (churn completion sums) are sidestepped by
//! logging raw completions and replaying them in canonical order at
//! merge time ([`CompletionRecord`]). Probe and trace streams are
//! captured per shard with `(event time, event key, intra-event seq)`
//! tags and merged by sorting on that key, which *is* the serial
//! emission order.
//!
//! Threading in this module is the sanctioned exception to the
//! `thread-spawn` simlint rule: determinism is proven by the
//! sharded-vs-serial identity suite (`tests/sharded_identity.rs`), not
//! assumed.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use sim_core::time::{SimDuration, SimTime};

use crate::churn::CompletionRecord;
use crate::ids::NodeId;
use crate::logic::LogicReport;
use crate::monitor::{FlowReport, LinkReport, SimReport};
use crate::network::{Event, EventCursor, Network, ShardView};
use crate::slab::DenseMap;
use crate::telemetry::{Probe, Sample};
use crate::topology::TopologyBuilder;
use crate::trace::{TraceEvent, Tracer};

/// A deterministic assignment of nodes to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `shard_of_node[n]` is the shard owning node `n`.
    pub shard_of_node: Vec<u32>,
    /// Minimum propagation delay over cut links — the conservative
    /// lookahead. `None` when no link is cut (single shard, or fully
    /// disconnected parts): the executor then skips straight to the
    /// drain loop.
    pub lookahead: Option<SimDuration>,
    /// The requested shard count (shards left empty by a coarse
    /// partition still participate in barriers and replicated work).
    pub shards: u32,
}

impl Partition {
    /// Partitions `nodes` nodes connected by `links` (`(src, dst,
    /// delay)` triples) into `shards` shards. Pure function of its
    /// arguments; see the module docs for the algorithm.
    pub fn compute(shards: usize, nodes: usize, links: &[(u32, u32, SimDuration)]) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(shards <= u32::MAX as usize, "shard count overflow");
        // Union-find over zero-delay links, always rooting at the lower
        // index so each group's root is its minimum member.
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut parent: Vec<u32> = (0..nodes as u32).collect();
        for &(a, b, delay) in links {
            if delay == SimDuration::ZERO {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra.max(rb) as usize] = ra.min(rb);
                }
            }
        }
        // Scanning nodes in index order visits each group at its minimum
        // member first, so `groups` comes out ordered by min node index.
        let mut group_of_root: Vec<Option<u32>> = vec![None; nodes];
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for n in 0..nodes as u32 {
            let root = find(&mut parent, n) as usize;
            let gi = *group_of_root[root].get_or_insert_with(|| {
                groups.push(Vec::new());
                (groups.len() - 1) as u32
            });
            groups[gi as usize].push(n);
        }
        // Deal contiguous runs of groups: a shard keeps taking groups
        // until it holds its node quota, except the last shard, which
        // takes the remainder.
        let quota = nodes.div_ceil(shards).max(1);
        let mut shard_of_node = vec![0u32; nodes];
        let mut current = 0u32;
        let mut held = 0usize;
        for group in &groups {
            if held >= quota && (current as usize) < shards - 1 {
                current += 1;
                held = 0;
            }
            for &n in group {
                shard_of_node[n as usize] = current;
            }
            held += group.len();
        }
        let lookahead = links
            .iter()
            .filter(|&&(a, b, _)| shard_of_node[a as usize] != shard_of_node[b as usize])
            .map(|&(_, _, delay)| delay)
            .min();
        debug_assert!(
            lookahead != Some(SimDuration::ZERO),
            "zero-delay links are never cut"
        );
        Partition {
            shard_of_node,
            lookahead,
            shards: shards as u32,
        }
    }
}

/// A cross-shard event in a mailbox: `(fire time, canonical key, event)`.
type Envelope = (SimTime, u64, Event);

/// A captured probe record: merge key (event time, event key,
/// intra-event sequence) plus the original `record` arguments.
type ProbeRec = ((SimTime, u64, u64), SimTime, NodeId, Sample);

/// A captured trace record, keyed like [`ProbeRec`].
type TraceRec = ((SimTime, u64, u64), SimTime, TraceEvent);

/// A [`Probe`] that logs records tagged with the shard's event cursor,
/// for the canonical-order merge.
struct CaptureProbe {
    cursor: EventCursor,
    last: (SimTime, u64),
    intra: u64,
    log: Vec<ProbeRec>,
}

impl CaptureProbe {
    fn new(cursor: EventCursor) -> Self {
        CaptureProbe {
            cursor,
            last: (SimTime::ZERO, 0),
            intra: 0,
            log: Vec::new(),
        }
    }
}

impl Probe for CaptureProbe {
    fn record(&mut self, now: SimTime, node: NodeId, sample: &Sample) {
        let cur = self.cursor.get();
        if cur != self.last {
            self.last = cur;
            self.intra = 0;
        }
        self.log
            .push(((cur.0, cur.1, self.intra), now, node, *sample));
        self.intra += 1;
    }
}

/// A [`Tracer`] that logs records tagged like [`CaptureProbe`].
struct CaptureTracer {
    cursor: EventCursor,
    last: (SimTime, u64),
    intra: u64,
    log: Vec<TraceRec>,
}

impl CaptureTracer {
    fn new(cursor: EventCursor) -> Self {
        CaptureTracer {
            cursor,
            last: (SimTime::ZERO, 0),
            intra: 0,
            log: Vec::new(),
        }
    }
}

impl Tracer for CaptureTracer {
    fn record(&mut self, now: SimTime, event: &TraceEvent) {
        let cur = self.cursor.get();
        if cur != self.last {
            self.last = cur;
            self.intra = 0;
        }
        self.log.push(((cur.0, cur.1, self.intra), now, *event));
        self.intra += 1;
    }
}

/// What one shard worker hands back for the merge.
struct ShardPartial {
    report: SimReport,
    flow_egress: Vec<u32>,
    events: u64,
    probes: Vec<ProbeRec>,
    traces: Vec<TraceRec>,
    completions: Vec<CompletionRecord>,
    churn_window: Option<(SimTime, SimTime)>,
}

/// The result of a sharded run.
pub struct ShardedOutcome {
    /// Byte-identical to the serial engine's report for the same
    /// topology, seed and horizon.
    pub report: SimReport,
    /// Events popped from each shard's queue (load-balance telemetry;
    /// sums to more than the serial count because replicated lifecycle
    /// events pop once per shard).
    pub per_shard_events: Vec<u64>,
    /// Every probe record in canonical (serial) order; replay into a
    /// real [`Probe`] to reproduce the serial telemetry stream.
    pub probe_log: Vec<(SimTime, NodeId, Sample)>,
    /// Every trace record in canonical (serial) order.
    pub trace_log: Vec<(SimTime, TraceEvent)>,
}

/// Runs the topology produced by `factory` to `end` on `shards` worker
/// threads and merges the results; see the module docs for the protocol.
///
/// `factory` is invoked once per worker (plus once up front for the
/// partitioner) and must yield identical builders each time — same
/// seed, same topology, same flow schedule. It must *not* install a
/// probe or tracer; set `capture_probe` / `capture_trace` instead and
/// replay [`ShardedOutcome::probe_log`] / [`ShardedOutcome::trace_log`]
/// after the run.
pub fn run_sharded<F>(
    factory: F,
    shards: usize,
    end: SimTime,
    capture_probe: bool,
    capture_trace: bool,
) -> ShardedOutcome
where
    F: Fn() -> TopologyBuilder + Sync,
{
    let (nodes, links) = factory().partition_inputs();
    let partition = Partition::compute(shards, nodes, &links);
    let mailboxes: Vec<Vec<Mutex<Vec<Envelope>>>> = (0..shards)
        .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = Barrier::new(shards);
    let moved = [AtomicU64::new(0), AtomicU64::new(0)];

    let partials: Vec<ShardPartial> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|me| {
                let factory = &factory;
                let partition = &partition;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let moved = &moved;
                scope.spawn(move || {
                    run_shard(
                        factory,
                        partition,
                        me,
                        shards,
                        end,
                        mailboxes,
                        barrier,
                        moved,
                        capture_probe,
                        capture_trace,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    merge(partials, &partition)
}

/// One worker: builds its own full topology (networks are not `Send`),
/// restricted to its shard view, and runs the epoch + drain loops.
#[allow(clippy::too_many_arguments)]
fn run_shard<F>(
    factory: &F,
    partition: &Partition,
    me: usize,
    shards: usize,
    end: SimTime,
    mailboxes: &[Vec<Mutex<Vec<Envelope>>>],
    barrier: &Barrier,
    moved: &[AtomicU64; 2],
    capture_probe: bool,
    capture_trace: bool,
) -> ShardPartial
where
    F: Fn() -> TopologyBuilder + Sync,
{
    let mut builder = factory();
    builder.shard_view(ShardView {
        shard_of_node: partition.shard_of_node.clone(),
        me: me as u32,
        lookahead: partition.lookahead,
    });
    let cursor: EventCursor = Rc::new(Cell::new((SimTime::ZERO, 0)));
    let probe = capture_probe.then(|| Rc::new(RefCell::new(CaptureProbe::new(cursor.clone()))));
    if let Some(p) = &probe {
        builder.probe(p.clone());
    }
    let tracer = capture_trace.then(|| Rc::new(RefCell::new(CaptureTracer::new(cursor.clone()))));
    if let Some(t) = &tracer {
        builder.tracer(t.clone());
    }
    let mut net = builder.build();
    if capture_probe || capture_trace {
        net.install_cursor(cursor);
    }

    let mut round = 0usize;
    // Conservative epochs: everything strictly before each lookahead
    // boundary is safe to execute without hearing from peers.
    if let Some(lookahead) = partition.lookahead {
        let mut t = SimTime::ZERO;
        while t + lookahead < end {
            let boundary = t + lookahead;
            net.run_before(boundary);
            exchange(&mut net, me, round, shards, mailboxes, barrier, moved);
            round += 1;
            t = boundary;
        }
    }
    // Drain: run to the horizon, exchange, repeat until a whole round
    // moves nothing anywhere.
    loop {
        net.run_until(end);
        let total = exchange(&mut net, me, round, shards, mailboxes, barrier, moved);
        round += 1;
        if total == 0 {
            break;
        }
    }

    let completions = net.take_completions();
    let churn_window = net.churn_window();
    let flow_egress = net.flow_egress_nodes();
    let events = net.events_popped();
    let report = net.into_report(end);
    ShardPartial {
        report,
        flow_egress,
        events,
        probes: probe
            .map(|p| std::mem::take(&mut p.borrow_mut().log))
            .unwrap_or_default(),
        traces: tracer
            .map(|t| std::mem::take(&mut t.borrow_mut().log))
            .unwrap_or_default(),
        completions,
        churn_window,
    }
}

/// One barrier exchange: deposit this shard's outbox, wait for every
/// deposit, drain own mailboxes, and agree on the round's total moved
/// count. Two barriers per round; the count lives in a double-buffered
/// atomic indexed by round parity, reset for the *next* round after the
/// second barrier (every thread stores the same zero, and the store is
/// ordered after all of this round's reads by the barrier).
fn exchange(
    net: &mut Network,
    me: usize,
    round: usize,
    shards: usize,
    mailboxes: &[Vec<Mutex<Vec<Envelope>>>],
    barrier: &Barrier,
    moved: &[AtomicU64; 2],
) -> u64 {
    for (dst, time, key, event) in net.take_outgoing() {
        mailboxes[me][dst as usize]
            .lock()
            .expect("mailbox poisoned")
            .push((time, key, event));
    }
    barrier.wait();
    let mut injected = 0u64;
    for row in mailboxes.iter().take(shards) {
        let batch = std::mem::take(&mut *row[me].lock().expect("mailbox poisoned"));
        injected += batch.len() as u64;
        for (time, key, event) in batch {
            net.inject(time, key, event);
        }
    }
    // Barriers order everything here, so relaxed atomics suffice.
    moved[round & 1].fetch_add(injected, Ordering::Relaxed);
    barrier.wait();
    let total = moved[round & 1].load(Ordering::Relaxed);
    moved[(round + 1) & 1].store(0, Ordering::Relaxed);
    total
}

/// Stitches per-shard partials into the serial report: every quantity is
/// taken from the shard that observed it (egress owner for flow
/// delivery, link source owner for link counters, node owner for logic
/// state), summed where serial accounting sums over nodes (drops, event
/// counts), or replayed in canonical order where float accumulation is
/// order-sensitive (churn completions, probe/trace streams).
fn merge(mut partials: Vec<ShardPartial>, partition: &Partition) -> ShardedOutcome {
    let per_shard_events: Vec<u64> = partials.iter().map(|p| p.events).collect();
    let owner = |node: u32| partition.shard_of_node[node as usize] as usize;
    // Identical on every shard (replicated flow-table bookkeeping).
    let flow_egress = std::mem::take(&mut partials[0].flow_egress);

    let flows: Vec<FlowReport> = flow_egress
        .iter()
        .enumerate()
        .map(|(i, &egress)| {
            let own = owner(egress);
            let mut fr = partials[own].report.flows[i].clone();
            // Deliveries all land on the egress owner, but drops are
            // recorded where they happen — any node on the path.
            for (s, p) in partials.iter().enumerate() {
                if s != own {
                    let other = &p.report.flows[i];
                    fr.tail_drops += other.tail_drops;
                    fr.policy_drops += other.policy_drops;
                    fr.fault_drops += other.fault_drops;
                }
            }
            fr
        })
        .collect();

    // A link's traffic is transmitted entirely by its source node.
    let links: Vec<LinkReport> = partials[0]
        .report
        .links
        .iter()
        .enumerate()
        .map(|(i, l)| partials[owner(l.src.index() as u32)].report.links[i].clone())
        .collect();

    let logic: DenseMap<NodeId, LogicReport> = (0..partition.shard_of_node.len())
        .map(|n| {
            let id = NodeId::from_index(n);
            let report = partials[owner(n as u32)]
                .report
                .logic
                .get(&id)
                .expect("every shard reports every node")
                .clone();
            (id, report)
        })
        .collect();

    let events_processed = partials.iter().map(|p| p.report.events_processed).sum();

    // Replicated churn bookkeeping is identical everywhere; completion
    // metrics were deferred on every shard and are replayed here in
    // canonical retire order, which is exactly the serial fold order.
    let churn = partials[0].report.churn.clone().map(|mut c| {
        c.stale_events = partials
            .iter()
            .map(|p| p.report.churn.as_ref().map_or(0, |r| r.stale_events))
            .sum();
        let (start, stop) = partials[0].churn_window.expect("churn window present");
        let mut records: Vec<CompletionRecord> = partials
            .iter_mut()
            .flat_map(|p| std::mem::take(&mut p.completions))
            .collect();
        records.sort_unstable_by_key(|r| (r.time, r.key));
        for r in &records {
            c.absorb_completion(start, stop, r);
        }
        c
    });

    let mut probe_recs: Vec<ProbeRec> = partials
        .iter_mut()
        .flat_map(|p| std::mem::take(&mut p.probes))
        .collect();
    probe_recs.sort_unstable_by_key(|r| r.0);
    let mut trace_recs: Vec<TraceRec> = partials
        .iter_mut()
        .flat_map(|p| std::mem::take(&mut p.traces))
        .collect();
    trace_recs.sort_unstable_by_key(|r| r.0);

    ShardedOutcome {
        report: SimReport {
            end: partials[0].report.end,
            flows,
            links,
            logic,
            events_processed,
            churn,
        },
        per_shard_events,
        probe_log: probe_recs
            .into_iter()
            .map(|(_, t, n, s)| (t, n, s))
            .collect(),
        trace_log: trace_recs.into_iter().map(|(_, t, e)| (t, e)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// The partition is a pure function of the topology: this pins the
    /// exact assignment so any algorithm change is a conscious one.
    #[test]
    fn partition_assignment_is_deterministic_and_pinned() {
        // 6 nodes; 0-1 fused by a zero-delay link, the rest 10ms apart.
        let links = vec![
            (0u32, 1u32, SimDuration::ZERO),
            (1, 2, ms(10)),
            (2, 3, ms(20)),
            (3, 4, ms(10)),
            (4, 5, ms(30)),
        ];
        let p = Partition::compute(3, 6, &links);
        // quota = ceil(6/3) = 2: {0,1} fill shard 0, {2},{3} fill shard
        // 1, {4},{5} fill shard 2.
        assert_eq!(p.shard_of_node, vec![0, 0, 1, 1, 2, 2]);
        // Cut links: 1-2 (10ms), 3-4 (10ms) -> lookahead 10ms.
        assert_eq!(p.lookahead, Some(ms(10)));
        assert_eq!(p.shards, 3);
        // Recomputing yields the identical partition.
        assert_eq!(Partition::compute(3, 6, &links), p);
    }

    #[test]
    fn single_shard_partition_has_no_cut_links() {
        let links = vec![(0u32, 1u32, ms(5)), (1, 2, ms(5))];
        let p = Partition::compute(1, 3, &links);
        assert_eq!(p.shard_of_node, vec![0, 0, 0]);
        assert_eq!(p.lookahead, None);
    }

    #[test]
    fn zero_delay_groups_are_never_split() {
        // A chain fused end-to-end by zero-delay links cannot be cut.
        let links = vec![
            (0u32, 1u32, SimDuration::ZERO),
            (1, 2, SimDuration::ZERO),
            (2, 3, SimDuration::ZERO),
        ];
        let p = Partition::compute(4, 4, &links);
        assert_eq!(p.shard_of_node, vec![0, 0, 0, 0]);
        assert_eq!(p.lookahead, None);
    }

    #[test]
    fn extra_shards_stay_empty_but_counted() {
        let links = vec![(0u32, 1u32, ms(5))];
        let p = Partition::compute(8, 2, &links);
        assert_eq!(p.shard_of_node, vec![0, 1]);
        assert_eq!(p.shards, 8);
        assert_eq!(p.lookahead, Some(ms(5)));
    }
}
