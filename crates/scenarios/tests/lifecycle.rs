//! Flow-lifecycle integration suite: multi-activation schedules under
//! every registered discipline, stops on measurement-window boundaries,
//! FCT accounting on departure, and byte-identical churn results across
//! executors, queue backends, and dispatch modes.

use scenarios::churn::{churn_markdown, churn_rows};
use scenarios::discipline::{by_name, default_registry};
use scenarios::topology::Route;
use scenarios::{Scenario, ScenarioChurn, ScenarioFlow};
use sim_core::event::QueueBackend;
use sim_core::time::SimTime;

/// Two activation windows with a 5 s gap, against a competing flow that
/// keeps the bottleneck busy throughout.
fn restart_scenario() -> Scenario {
    Scenario::paper(
        "lifecycle_restart",
        vec![
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 2,
                min_rate: 0.0,
                activations: vec![
                    (SimTime::ZERO, Some(SimTime::from_secs(10))),
                    (SimTime::from_secs(15), Some(SimTime::from_secs(25))),
                ],
            },
            ScenarioFlow::best_effort(Route::new(0, 1), 1, SimTime::ZERO),
        ],
        SimTime::from_secs(30),
        23,
    )
}

fn churn_scenario(seed: u64) -> Scenario {
    Scenario::paper(
        "lifecycle_churn",
        vec![ScenarioFlow::best_effort(
            Route::new(0, 3),
            2,
            SimTime::ZERO,
        )],
        SimTime::from_secs(30),
        seed,
    )
    .with_churn(
        ScenarioChurn::new(6.0, 40.0, 100.0)
            .route(Route::new(0, 1))
            .route(Route::new(1, 3))
            .weights(vec![1, 2])
            .window(SimTime::ZERO, SimTime::from_secs(20)),
    )
}

/// Every discipline — adaptive edges and open-loop baselines alike —
/// must serve both activation windows and go quiet in the gap.
#[test]
fn multi_activation_delivers_in_both_windows_under_every_discipline() {
    for discipline in default_registry() {
        let result = restart_scenario().run(discipline.as_ref());
        let name = discipline.name();
        let first = result.report.flows[0]
            .mean_goodput_in(SimTime::from_secs(3), SimTime::from_secs(10))
            .unwrap_or(0.0);
        assert!(first > 1.0, "{name}: first window idle ({first} pkt/s)");
        // The gap: nothing but residual in-flight packets, which the
        // 0.4 s round trip clears well before t=12.
        let gap = result.report.flows[0]
            .mean_goodput_in(SimTime::from_secs(12), SimTime::from_secs(15))
            .unwrap_or(0.0);
        assert!(gap < 0.5, "{name}: traffic in the gap ({gap} pkt/s)");
        // The restart at t=15 must take — this is the window the stale
        // lifecycle-event bugs used to kill.
        let second = result.report.flows[0]
            .mean_goodput_in(SimTime::from_secs(18), SimTime::from_secs(25))
            .unwrap_or(0.0);
        assert!(
            second > 1.0,
            "{name}: restart never served ({second} pkt/s)"
        );
    }
}

/// A stop landing exactly on a measurement-window boundary (the 1 s
/// default) must neither lose nor double-count the final window.
#[test]
fn stop_on_measurement_window_boundary_keeps_series_consistent() {
    let scenario = Scenario::paper(
        "boundary_stop",
        vec![
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, Some(SimTime::from_secs(10)))],
            },
            ScenarioFlow::best_effort(Route::new(0, 1), 1, SimTime::ZERO),
        ],
        SimTime::from_secs(20),
        31,
    );
    let result = scenario.run(by_name("corelite").unwrap().as_ref());
    let flow = &result.report.flows[0];
    assert!(flow.delivered_packets > 0, "flow never delivered");
    // Cumulative-service samples are strictly non-decreasing and hit
    // every whole-second boundary exactly once.
    let cumulative = flow.cumulative.as_slice();
    assert!(
        cumulative
            .windows(2)
            .all(|w| { w[1].1 >= w[0].1 && w[1].0 > w[0].0 }),
        "cumulative series not monotone: {cumulative:?}"
    );
    // After the boundary stop (plus in-flight drain) the flow is silent.
    let after = flow
        .mean_goodput_in(SimTime::from_secs(12), SimTime::from_secs(20))
        .unwrap_or(0.0);
    assert_eq!(after, 0.0, "traffic after a boundary stop");
}

/// Departing churn flows record one FCT and one settling sample each,
/// and settling never exceeds completion.
#[test]
fn fct_recorded_on_departure() {
    let result = churn_scenario(5).run(by_name("corelite").unwrap().as_ref());
    let churn = result.report.churn.as_ref().expect("churn report");
    assert!(churn.arrivals > 50, "arrivals {}", churn.arrivals);
    assert_eq!(churn.retired, churn.arrivals, "every flow drains");
    assert_eq!(churn.fct.count(), churn.completed);
    assert_eq!(churn.settling.count(), churn.completed);
    let settle = churn.settling.mean().expect("settling recorded");
    let fct = churn.mean_fct().expect("fct recorded");
    assert!(
        settle > 0.0 && settle <= fct,
        "settling {settle} vs fct {fct}"
    );
    assert_eq!(churn.stale_events, 0);
}

/// The churn sweep is byte-identical across the serial and parallel
/// executors, and churn runs are byte-identical across queue backends
/// and dispatch modes.
#[test]
fn churn_results_are_byte_identical_across_executors_and_backends() {
    let registry = vec![by_name("corelite").unwrap(), by_name("csfq").unwrap()];
    let scenarios = [churn_scenario(5)];
    let serial = churn_markdown(&churn_rows(&scenarios, &registry, true));
    let parallel = churn_markdown(&churn_rows(&scenarios, &registry, false));
    assert_eq!(serial, parallel, "serial vs parallel executor diverged");

    let corelite = by_name("corelite").unwrap();
    let render_queue = |backend| {
        format!(
            "{:?}",
            churn_scenario(5)
                .run_with_queue(corelite.as_ref(), backend)
                .report
        )
    };
    let wheel = render_queue(QueueBackend::Wheel);
    assert_eq!(
        wheel,
        render_queue(QueueBackend::Heap),
        "heap backend diverged"
    );
    let per_packet = format!(
        "{:?}",
        churn_scenario(5)
            .run_with_dispatch(corelite.as_ref(), netsim::DispatchMode::PerPacket)
            .report
    );
    assert_eq!(wheel, per_packet, "per-packet dispatch diverged");
}
