//! The churn sweep shared by the `churn` binary and the lifecycle tests.
//!
//! [`churn_rows`] runs a `scenarios × disciplines` sweep of dynamic-
//! arrival workloads through the deterministic executor and reports, per
//! cell, the flow-completion-time distribution, settling time, peak
//! concurrency and table footprint from the run's
//! [`netsim::ChurnReport`]. [`churn_markdown`] renders the table with
//! fixed-precision formatting, so equal sweeps yield identical bytes —
//! the determinism contract the CI smoke step compares across runs.

use crate::discipline::Discipline;
use crate::exec::{run_parallel, run_serial};
use crate::runner::Scenario;

/// One cell of the churn table.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Topology name.
    pub topology: &'static str,
    /// Discipline name.
    pub discipline: &'static str,
    /// Flows created by the arrival process.
    pub arrivals: u64,
    /// Retired flows that delivered at least one packet.
    pub completed: u64,
    /// Mean flow completion time, seconds (0 if nothing completed).
    pub mean_fct: f64,
    /// 95th-percentile flow completion time, seconds.
    pub p95_fct: f64,
    /// Mean settling time (arrival to first delivery), seconds.
    pub mean_settling: f64,
    /// Highest concurrent active-flow count observed.
    pub peak_active: u64,
    /// Highest number of flow-table slots ever resident.
    pub peak_slots: usize,
    /// Stale events the engine discarded (recycled-slot hygiene; should
    /// be 0 whenever the linger covers the residual in-flight time).
    pub stale_events: u64,
}

/// Runs every `(scenario, discipline)` combination and returns one
/// [`ChurnRow`] per cell, in sweep order. The sweep goes through
/// [`run_parallel`] unless `serial` is set; both orders produce
/// identical rows.
///
/// # Panics
///
/// Panics if a scenario carries no churn process — the sweep would
/// produce empty rows, which always indicates a mis-built scenario.
pub fn churn_rows(
    scenarios: &[Scenario],
    registry: &[Box<dyn Discipline>],
    serial: bool,
) -> Vec<ChurnRow> {
    for s in scenarios {
        assert!(
            s.churn.is_some(),
            "scenario `{}` has no churn process",
            s.name
        );
    }
    let jobs: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|s| (0..registry.len()).map(move |d| (s, d)))
        .collect();
    let work = |(s, d): (usize, usize)| {
        let result = scenarios[s].run(registry[d].as_ref());
        result
            .report
            .churn
            .clone()
            .expect("churn scenarios produce a churn report")
    };
    let cells = if serial {
        run_serial(jobs.clone(), work)
    } else {
        run_parallel(jobs.clone(), work)
    };
    jobs.iter()
        .zip(&cells)
        .map(|(&(s, d), churn)| ChurnRow {
            scenario: scenarios[s].name,
            topology: scenarios[s].topology.name,
            discipline: registry[d].name(),
            arrivals: churn.arrivals,
            completed: churn.completed,
            mean_fct: churn.mean_fct().unwrap_or(0.0),
            p95_fct: churn.fct_quantile(0.95).unwrap_or(0.0),
            mean_settling: churn.settling.mean().unwrap_or(0.0),
            peak_active: churn.peak_active,
            peak_slots: churn.peak_slots,
            stale_events: churn.stale_events,
        })
        .collect()
}

/// Renders [`churn_rows`] output as a markdown table. All numeric
/// columns use fixed precision, so identical rows render to identical
/// bytes.
pub fn churn_markdown(rows: &[ChurnRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "| scenario | topology | discipline | arrivals | completed | mean FCT (s) | p95 FCT (s) | settle (s) | peak active | peak slots | stale |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {} | {} | {} |\n",
            r.scenario,
            r.topology,
            r.discipline,
            r.arrivals,
            r.completed,
            r.mean_fct,
            r.p95_fct,
            r.mean_settling,
            r.peak_active,
            r.peak_slots,
            r.stale_events,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ScenarioChurn, ScenarioFlow};
    use crate::topology::Route;
    use sim_core::time::SimTime;

    fn churn_scenario(horizon_secs: u64) -> Scenario {
        Scenario::paper(
            "churn_mini",
            vec![ScenarioFlow::best_effort(
                Route::new(0, 3),
                2,
                SimTime::ZERO,
            )],
            SimTime::from_secs(horizon_secs),
            11,
        )
        .with_churn(
            ScenarioChurn::new(4.0, 20.0, 100.0)
                .route(Route::new(0, 1))
                .route(Route::new(2, 3))
                .weights(vec![1, 2])
                .window(SimTime::ZERO, SimTime::from_secs(horizon_secs / 2)),
        )
    }

    #[test]
    fn churn_rows_collect_lifecycle_metrics() {
        let registry = vec![crate::discipline::by_name("corelite").unwrap()];
        let rows = churn_rows(&[churn_scenario(30)], &registry, true);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.arrivals > 20, "arrivals {}", r.arrivals);
        assert!(r.completed > 0, "completed {}", r.completed);
        assert!(r.mean_fct > 0.0 && r.p95_fct >= r.mean_settling);
        assert!(r.peak_active as usize <= r.peak_slots);
        let md = churn_markdown(&rows);
        assert!(md.contains("| churn_mini |"), "{md}");
        assert_eq!(md.lines().count(), 2 + rows.len());
    }

    #[test]
    #[should_panic(expected = "no churn process")]
    fn static_scenarios_are_rejected() {
        let mut s = churn_scenario(30);
        s.churn = None;
        let registry = vec![crate::discipline::by_name("corelite").unwrap()];
        churn_rows(&[s], &registry, true);
    }
}
