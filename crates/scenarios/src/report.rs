//! Expected-vs-measured tables, convergence summaries, and CSV export.

use fairness::metrics::{convergence_time, jain_index, settling_report, ConvergenceSpec};
use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

use crate::runner::ExperimentResult;

/// Expected-vs-measured summary for one flow over a steady-state window.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// 1-based paper flow number.
    pub flow: usize,
    /// The flow's rate weight.
    pub weight: u32,
    /// Analytic weighted max-min share at the window midpoint, pkt/s.
    pub expected: f64,
    /// Measured mean allotted rate over the window, pkt/s.
    pub measured: f64,
}

impl FlowSummary {
    /// Relative error of the measurement against the analytic share
    /// (0 when both are 0).
    pub fn relative_error(&self) -> f64 {
        if self.expected.abs() < 1e-9 {
            if self.measured.abs() < 1e-9 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.expected).abs() / self.expected
        }
    }
}

/// Compares each flow's mean allotted rate over `[from, to)` against the
/// analytic weighted max-min share at the window midpoint.
pub fn steady_state_summary(
    result: &ExperimentResult,
    from: SimTime,
    to: SimTime,
) -> Vec<FlowSummary> {
    let mid = SimTime::from_secs_f64((from.as_secs_f64() + to.as_secs_f64()) / 2.0);
    let expected = result.expected_rates_at(mid);
    (0..result.scenario.flows.len())
        .map(|i| FlowSummary {
            flow: i + 1,
            weight: result.scenario.flows[i].weight,
            expected: expected[i],
            measured: result.mean_rate_in(i, from, to),
        })
        .collect()
}

/// Jain's fairness index of the measured rates of the flows expected to be
/// active over the window (weights respected).
pub fn window_jain_index(result: &ExperimentResult, from: SimTime, to: SimTime) -> f64 {
    let summaries = steady_state_summary(result, from, to);
    let (rates, weights): (Vec<f64>, Vec<f64>) = summaries
        .iter()
        .filter(|s| s.expected > 0.0)
        .map(|s| (s.measured, s.weight as f64))
        .unzip();
    jain_index(&rates, &weights)
}

/// Per-flow settling times: the first instant from which the allotted
/// rate — smoothed over 4 s buckets, since both disciplines oscillate
/// around their operating point by design (the paper reads convergence
/// off the plotted curves) — stays within ±`tolerance` of the flow's own
/// realized steady-state mean (its smoothed mean over the window ending
/// at `probe`) for at least `sustain`.
///
/// Settling is measured against the *realized* operating point rather
/// than the analytic share: accuracy against the analytic share is
/// reported separately by [`steady_state_summary`], and conflating the
/// two makes the metric fail for flows whose equilibrium sits slightly
/// off the ideal (e.g. multi-bottleneck flows reacting to the max
/// per-core feedback).
pub fn convergence_summary(
    result: &ExperimentResult,
    probe: SimTime,
    tolerance: f64,
    sustain: SimDuration,
) -> Vec<(usize, Option<SimTime>)> {
    let expected = result.expected_rates_at(probe);
    let window = SimDuration::from_secs(10);
    (0..result.scenario.flows.len())
        .map(|i| {
            if expected[i] <= 0.0 {
                return (i + 1, None);
            }
            let smoothed = result
                .rate_series(i)
                .resample_mean(SimDuration::from_secs(4));
            let from = if probe.saturating_since(SimTime::ZERO) > window {
                probe - window
            } else {
                SimTime::ZERO
            };
            let Some(target) = smoothed.mean_in(from, probe) else {
                return (i + 1, None);
            };
            if target <= 0.0 {
                return (i + 1, None);
            }
            let spec = ConvergenceSpec {
                target,
                tolerance,
                sustain,
            };
            (i + 1, convergence_time(&smoothed, &spec))
        })
        .collect()
}

/// The mean per-flow settling time over the expected-active flows that
/// settle at all, together with the count that never settle. More robust
/// than the maximum when a single low-weight flow oscillates across the
/// band boundary.
pub fn mean_convergence(
    result: &ExperimentResult,
    probe: SimTime,
    tolerance: f64,
    sustain: SimDuration,
) -> (Option<f64>, usize) {
    let expected = result.expected_rates_at(probe);
    let mut sum = 0.0;
    let mut n = 0usize;
    let mut unsettled = 0usize;
    for (i, t) in convergence_summary(result, probe, tolerance, sustain) {
        if expected[i - 1] <= 0.0 {
            continue;
        }
        match t {
            Some(t) => {
                sum += t.as_secs_f64();
                n += 1;
            }
            None => unsettled += 1,
        }
    }
    ((n > 0).then(|| sum / n as f64), unsettled)
}

/// The latest per-flow convergence time, or `None` if any expected-active
/// flow never converges — the scalar used to compare §4.2's "Corelite
/// converges more than 30 seconds faster than CSFQ".
pub fn last_convergence(
    result: &ExperimentResult,
    probe: SimTime,
    tolerance: f64,
    sustain: SimDuration,
) -> Option<SimTime> {
    let expected = result.expected_rates_at(probe);
    let mut latest = SimTime::ZERO;
    for (i, t) in convergence_summary(result, probe, tolerance, sustain) {
        if expected[i - 1] <= 0.0 {
            continue;
        }
        latest = latest.max(t?);
    }
    Some(latest)
}

/// One flow's convergence diagnostics against the analytic weighted
/// max-min reference (contrast with [`convergence_summary`], which
/// measures against the flow's own realized operating point).
#[derive(Debug, Clone, PartialEq)]
pub struct SettlingRow {
    /// 1-based paper flow number.
    pub flow: usize,
    /// The flow's rate weight.
    pub weight: u32,
    /// Analytic weighted max-min share at the probe instant, pkt/s.
    pub reference: f64,
    /// First instant from which the smoothed rate stays within the
    /// tolerance band around `reference` for the sustain window, or
    /// `None` if the flow never settles.
    pub settling_time: Option<SimTime>,
    /// Half the peak-to-peak rate excursion after settling, as a
    /// fraction of `reference`; `None` while unsettled.
    pub oscillation: Option<f64>,
}

/// Per-flow settling time and post-settling oscillation amplitude
/// against the **analytic** weighted max-min reference at `probe`
/// (the §4.2 convergence diagnostic). Rates are smoothed over 4 s
/// buckets, as in [`convergence_summary`]. Flows whose reference share
/// is 0 (inactive at `probe`) report `None` for both diagnostics.
pub fn settling_summary(
    result: &ExperimentResult,
    probe: SimTime,
    tolerance: f64,
    sustain: SimDuration,
) -> Vec<SettlingRow> {
    let expected = result.expected_rates_at(probe);
    (0..result.scenario.flows.len())
        .map(|i| {
            let weight = result.scenario.flows[i].weight;
            if expected[i] <= 0.0 {
                return SettlingRow {
                    flow: i + 1,
                    weight,
                    reference: expected[i],
                    settling_time: None,
                    oscillation: None,
                };
            }
            let smoothed = result
                .rate_series(i)
                .resample_mean(SimDuration::from_secs(4));
            let r = settling_report(&smoothed, expected[i], tolerance, sustain);
            SettlingRow {
                flow: i + 1,
                weight,
                reference: expected[i],
                settling_time: r.settling_time,
                oscillation: r.oscillation,
            }
        })
        .collect()
}

/// Jain's weighted fairness index sampled every `step` across the run:
/// at each instant the index is computed over the 4-s-smoothed rates of
/// the flows whose analytic share at that instant is positive. Empty
/// active sets contribute no sample, so the series starts at the first
/// instant with traffic expected.
pub fn jain_trajectory(result: &ExperimentResult, step: SimDuration) -> TimeSeries {
    assert!(!step.is_zero(), "trajectory sampling step must be positive");
    let n = result.scenario.flows.len();
    let smoothed: Vec<TimeSeries> = (0..n)
        .map(|i| {
            result
                .rate_series(i)
                .resample_mean(SimDuration::from_secs(4))
        })
        .collect();
    let mut out = TimeSeries::new();
    let mut t = SimTime::ZERO;
    while t <= result.scenario.horizon {
        let expected = result.expected_rates_at(t);
        let (rates, weights): (Vec<f64>, Vec<f64>) = (0..n)
            .filter(|&i| expected[i] > 0.0)
            .map(|i| {
                (
                    smoothed[i].value_at(t).unwrap_or(0.0),
                    result.scenario.flows[i].weight as f64,
                )
            })
            .unzip();
        if !rates.is_empty() {
            out.push(t, jain_index(&rates, &weights));
        }
        t += step;
    }
    out
}

/// Renders a settling summary as a Markdown table.
pub fn settling_markdown(rows: &[SettlingRow]) -> String {
    let mut out =
        String::from("| flow | weight | reference (pkt/s) | settling (s) | oscillation |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in rows {
        let settle = match r.settling_time {
            Some(t) => format!("{:.1}", t.as_secs_f64()),
            None => "—".to_owned(),
        };
        let osc = match r.oscillation {
            Some(a) => format!("{:.1}%", a * 100.0),
            None => "—".to_owned(),
        };
        out.push_str(&format!(
            "| {} | {} | {:.2} | {} | {} |\n",
            r.flow, r.weight, r.reference, settle, osc
        ));
    }
    out
}

/// Renders a Jain-index trajectory as a Markdown table (one row per
/// sample).
pub fn jain_trajectory_markdown(trajectory: &TimeSeries) -> String {
    let mut out = String::from("| t (s) | Jain index |\n|---|---|\n");
    for (t, j) in trajectory.iter() {
        out.push_str(&format!("| {:.0} | {j:.4} |\n", t.as_secs_f64()));
    }
    out
}

/// Renders a steady-state summary as a Markdown table.
pub fn summary_markdown(summaries: &[FlowSummary]) -> String {
    let mut out =
        String::from("| flow | weight | expected (pkt/s) | measured (pkt/s) | rel. error |\n");
    out.push_str("|---|---|---|---|---|\n");
    for s in summaries {
        let err = s.relative_error();
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.1}% |\n",
            s.flow,
            s.weight,
            s.expected,
            s.measured,
            err * 100.0
        ));
    }
    out
}

/// Exports every flow's rate series (edge-recorded allotted rate, or
/// measured goodput for open-loop disciplines) as a wide CSV
/// (`time,flow1,...,flowN`), sampled-and-held every `step`.
pub fn rate_series_csv(result: &ExperimentResult, step: SimDuration) -> String {
    series_csv(result, step, |r, i, t| {
        r.rate_series(i).value_at(t).unwrap_or(0.0)
    })
}

/// Exports every flow's cumulative delivered packets as a wide CSV
/// (Figure 4's quantity).
pub fn cumulative_csv(result: &ExperimentResult, step: SimDuration) -> String {
    series_csv(result, step, |r, i, t| {
        r.report.flows[i].cumulative.value_at(t).unwrap_or(0.0)
    })
}

/// Exports every flow's delivered-goodput series (per measurement window)
/// as a wide CSV.
pub fn goodput_csv(result: &ExperimentResult, step: SimDuration) -> String {
    series_csv(result, step, |r, i, t| {
        r.report.flows[i].goodput.value_at(t).unwrap_or(0.0)
    })
}

fn series_csv(
    result: &ExperimentResult,
    step: SimDuration,
    value: impl Fn(&ExperimentResult, usize, SimTime) -> f64,
) -> String {
    assert!(!step.is_zero(), "CSV sampling step must be positive");
    let n = result.scenario.flows.len();
    let mut out = String::from("time");
    for i in 0..n {
        out.push_str(&format!(",flow{}", i + 1));
    }
    out.push('\n');
    let mut t = SimTime::ZERO;
    while t <= result.scenario.horizon {
        out.push_str(&format!("{:.3}", t.as_secs_f64()));
        for i in 0..n {
            out.push_str(&format!(",{:.3}", value(result, i, t)));
        }
        out.push('\n');
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::Corelite;
    use crate::runner::{Scenario, ScenarioFlow};
    use crate::topology::Route;
    use corelite::CoreliteConfig;

    fn small_result() -> ExperimentResult {
        let scenario = Scenario::paper(
            "report_test",
            vec![
                ScenarioFlow {
                    transport: Default::default(),
                    path: Route::new(0, 1).into(),
                    weight: 1,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                },
                ScenarioFlow {
                    transport: Default::default(),
                    path: Route::new(0, 1).into(),
                    weight: 2,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                },
            ],
            SimTime::from_secs(260),
            3,
        );
        scenario.run(&Corelite::new(CoreliteConfig::default()))
    }

    #[test]
    fn summary_compares_measured_to_analytic() {
        let result = small_result();
        let s = steady_state_summary(&result, SimTime::from_secs(200), SimTime::from_secs(260));
        assert_eq!(s.len(), 2);
        assert!((s[0].expected - 500.0 / 3.0).abs() < 1e-6);
        assert!((s[1].expected - 1000.0 / 3.0).abs() < 1e-6);
        assert!(s[0].relative_error() < 0.3, "err {}", s[0].relative_error());
        assert!(s[1].relative_error() < 0.3, "err {}", s[1].relative_error());
    }

    #[test]
    fn jain_index_high_in_steady_state() {
        let result = small_result();
        let j = window_jain_index(&result, SimTime::from_secs(200), SimTime::from_secs(260));
        assert!(j > 0.95, "jain {j}");
    }

    #[test]
    fn markdown_has_row_per_flow() {
        let result = small_result();
        let s = steady_state_summary(&result, SimTime::from_secs(200), SimTime::from_secs(260));
        let md = summary_markdown(&s);
        assert_eq!(md.lines().count(), 2 + s.len());
        assert!(md.contains("| 1 | 1 |"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let result = small_result();
        let csv = rate_series_csv(&result, SimDuration::from_secs(10));
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time,flow1,flow2"));
        assert_eq!(csv.lines().count(), 1 + 27); // t = 0, 10, ..., 260
        let cum = cumulative_csv(&result, SimDuration::from_secs(30));
        assert!(cum.lines().count() >= 3);
        let good = goodput_csv(&result, SimDuration::from_secs(30));
        assert!(good.lines().count() >= 3);
    }

    #[test]
    fn convergence_summary_reports_each_flow() {
        let result = small_result();
        let conv = convergence_summary(
            &result,
            SimTime::from_secs(250),
            0.25,
            SimDuration::from_secs(10),
        );
        assert_eq!(conv.len(), 2);
        assert!(conv.iter().all(|(_, t)| t.is_some()), "{conv:?}");
        let last = last_convergence(
            &result,
            SimTime::from_secs(250),
            0.25,
            SimDuration::from_secs(10),
        );
        assert!(last.is_some());
    }

    #[test]
    fn settling_summary_measures_against_analytic_reference() {
        let result = small_result();
        let rows = settling_summary(
            &result,
            SimTime::from_secs(250),
            0.3,
            SimDuration::from_secs(10),
        );
        assert_eq!(rows.len(), 2);
        assert!((rows[0].reference - 500.0 / 3.0).abs() < 1e-6);
        assert!((rows[1].reference - 1000.0 / 3.0).abs() < 1e-6);
        for r in &rows {
            assert!(r.settling_time.is_some(), "{r:?}");
            let osc = r.oscillation.expect("settled flows report oscillation");
            assert!((0.0..0.6).contains(&osc), "{r:?}");
        }
        let md = settling_markdown(&rows);
        assert_eq!(md.lines().count(), 2 + rows.len());
        assert!(md.contains("| 1 | 1 |"));
    }

    #[test]
    fn jain_trajectory_rises_toward_one() {
        let result = small_result();
        let traj = jain_trajectory(&result, SimDuration::from_secs(20));
        assert!(!traj.is_empty());
        let late = traj
            .mean_in(SimTime::from_secs(200), SimTime::from_secs(261))
            .unwrap();
        assert!(late > 0.9, "late jain {late}");
        let md = jain_trajectory_markdown(&traj);
        assert!(md.lines().count() >= 3);
        assert!(md.starts_with("| t (s) | Jain index |"));
    }

    #[test]
    fn relative_error_edge_cases() {
        let zero_zero = FlowSummary {
            flow: 1,
            weight: 1,
            expected: 0.0,
            measured: 0.0,
        };
        assert_eq!(zero_zero.relative_error(), 0.0);
        let zero_some = FlowSummary {
            flow: 1,
            weight: 1,
            expected: 0.0,
            measured: 5.0,
        };
        assert_eq!(zero_some.relative_error(), f64::INFINITY);
    }
}
