//! `transports` — closed-loop vs open-loop transport fairness tables.
//!
//! ```text
//! cargo run --release -p scenarios --bin transports [-- --smoke] [-- --serial]
//! ```
//!
//! Runs the mixed-transport scenarios (the paper chain with LIMD and
//! Reno cohorts interleaved, and the 4×2 fat-tree cycling all three
//! transports) under the default Corelite discipline, and prints
//! markdown tables of per-flow steady-state goodput against the
//! weighted max-min reference, flow completion times (time to deliver
//! the first `FCT_PACKETS` packets), and the weighted Jain index per
//! transport cohort. Everything is computed from the deterministic
//! engine, so the output is byte-identical across runs; `--serial`
//! switches from the two-shard parallel engine to the serial one (same
//! bytes — CI diffs the two), and `--smoke` shortens the run for CI.

use fairness::metrics::jain_index;
use netsim::Transport;
use scenarios::discipline::Corelite;
use scenarios::{mixed_transports, mixed_transports_fat_tree, ExperimentResult, Scenario};
use sim_core::stats::TimeSeries;
use sim_core::time::SimTime;

const SEED: u64 = 20000; // ICDCS 2000

/// FCT threshold: time to deliver this many packets.
const FCT_PACKETS: f64 = 500.0;

fn transport_name(t: Transport) -> &'static str {
    match t {
        Transport::Limd => "limd",
        Transport::Gbn => "gbn",
        Transport::Reno => "reno",
    }
}

/// First time the cumulative-delivery series reaches `n` packets.
fn completion_time(cumulative: &TimeSeries, n: f64) -> Option<f64> {
    cumulative
        .iter()
        .find(|&(_, v)| v >= n)
        .map(|(t, _)| t.as_secs_f64())
}

fn print_tables(result: &ExperimentResult) {
    let horizon = result.scenario.horizon;
    let from = SimTime::from_secs_f64(horizon.as_secs_f64() / 2.0);
    let mid = SimTime::from_secs_f64((from.as_secs_f64() + horizon.as_secs_f64()) / 2.0);
    let expected = result.expected_rates_at(mid);

    println!("## {}\n", result.scenario.name);
    println!("| flow | transport | weight | expected pkt/s | goodput pkt/s | error % | fct s |");
    println!("|-----:|:----------|-------:|---------------:|--------------:|--------:|------:|");
    let mut cohorts: Vec<(Transport, Vec<f64>, Vec<f64>)> = Vec::new();
    for (i, f) in result.scenario.flows.iter().enumerate() {
        let flow = &result.report.flows[i];
        let measured = flow.goodput.mean_in(from, horizon).unwrap_or(0.0);
        let err = if expected[i] > 0.0 {
            100.0 * (measured - expected[i]) / expected[i]
        } else {
            0.0
        };
        let fct = completion_time(&flow.cumulative, FCT_PACKETS)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "| {} | {} | {} | {:.2} | {:.2} | {:+.1} | {} |",
            i + 1,
            transport_name(f.transport),
            f.weight,
            expected[i],
            measured,
            err,
            fct,
        );
        match cohorts.iter_mut().find(|(t, _, _)| *t == f.transport) {
            Some((_, rates, weights)) => {
                rates.push(measured);
                weights.push(f.weight as f64);
            }
            None => cohorts.push((f.transport, vec![measured], vec![f.weight as f64])),
        }
    }

    println!("\n| cohort | flows | weighted Jain | mean pkt/s per weight |");
    println!("|:-------|------:|--------------:|----------------------:|");
    let mut all_rates = Vec::new();
    let mut all_weights = Vec::new();
    for (t, rates, weights) in &cohorts {
        let per_weight: f64 =
            rates.iter().zip(weights).map(|(r, w)| r / w).sum::<f64>() / rates.len() as f64;
        println!(
            "| {} | {} | {:.4} | {:.2} |",
            transport_name(*t),
            rates.len(),
            jain_index(rates, weights),
            per_weight,
        );
        all_rates.extend_from_slice(rates);
        all_weights.extend_from_slice(weights);
    }
    println!(
        "| all | {} | {:.4} | - |\n",
        all_rates.len(),
        jain_index(&all_rates, &all_weights),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let serial = args.iter().any(|a| a == "--serial");
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut scenarios: Vec<Scenario> = if smoke {
        let mut short = mixed_transports(SEED);
        short.horizon = SimTime::from_secs(40);
        vec![short]
    } else {
        vec![mixed_transports(SEED), mixed_transports_fat_tree(SEED)]
    };
    for s in &mut scenarios {
        s.shards = if serial { 1 } else { 2 };
    }
    eprintln!(
        "running {} mixed-transport scenarios ({} executor)...",
        scenarios.len(),
        if serial { "serial" } else { "2-shard" }
    );
    println!("# Mixed-transport fairness under Corelite\n");
    let discipline = Corelite::default();
    for s in &scenarios {
        let result = s.run(&discipline);
        print_tables(&result);
    }
    println!(
        "Goodput is delivered packets at the egress (retransmitted\n\
         duplicates excluded) averaged over the second half of the run;\n\
         the expected column is the weighted max-min share. The cohort\n\
         table shows Jain's index weighted by flow weight within each\n\
         transport, plus the pooled index over every flow — closed-loop\n\
         cohorts are held to the same weighted shares as the open-loop\n\
         LIMD edge by Corelite's marker feedback. FCT is the time to\n\
         deliver the first {FCT_PACKETS} packets."
    );
}
