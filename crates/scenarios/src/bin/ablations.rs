//! Quality ablations over the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p scenarios --bin ablations
//! ```
//!
//! Every ablation runs the §4.2 workload (10 flows, weights ⌈i/2⌉,
//! simultaneous start, 80 s) varying one axis at a time and reports
//! drops, steady-state aggregate rate, bottleneck utilization, Jain
//! index, and mean settling time. The companion *cost* measurements live
//! in `cargo bench -p bench --bench mechanisms` (`ablation_cost`).

use corelite::{CoreliteConfig, DecreasePolicy, DetectorKind, MuUnit, SelectorKind};
use netsim::link::LinkSpec;
use scenarios::discipline::Corelite;
use scenarios::report::{mean_convergence, window_jain_index};
use scenarios::runner::ExperimentResult;
use scenarios::{fig5_6, topology};
use sim_core::time::{SimDuration, SimTime};

const SEED: u64 = 20000;

fn main() {
    println!("# Corelite design-choice ablations (§4.2 workload)\n");

    run_axis(
        "Marker selector (§2 cache vs §3.2 stateless)",
        vec![
            ("stateless (default)", CoreliteConfig::default()),
            (
                "cache, 64 markers",
                CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 64 }),
            ),
            (
                "cache, 256 markers",
                CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 256 }),
            ),
        ],
    );

    run_axis(
        "Congestion estimation module (§3.1: \"can be replaced\")",
        vec![
            ("paper formula (default)", CoreliteConfig::default()),
            (
                "RED-style (EWMA ramp 5..15)",
                CoreliteConfig {
                    detector: DetectorKind::Red {
                        wq: 0.25,
                        min_thresh: 5.0,
                        max_thresh: 15.0,
                        max_p: 0.2,
                    },
                    ..CoreliteConfig::default()
                },
            ),
            (
                "DECbit-style (thresh 2)",
                CoreliteConfig {
                    detector: DetectorKind::Decbit {
                        threshold: 2.0,
                        gain: 1.0,
                    },
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    run_axis(
        "Self-correcting cubic term k (§3.1)",
        vec![
            (
                "k = 0 (M/M/1 only)",
                CoreliteConfig::default().with_correction_k(0.0),
            ),
            ("k = 0.005 (default)", CoreliteConfig::default()),
            (
                "k = 0.05",
                CoreliteConfig::default().with_correction_k(0.05),
            ),
        ],
    );

    run_axis(
        "Service-rate unit in F_n (paper's per-epoch μ vs per-second μ)",
        vec![
            ("μ per epoch (default)", CoreliteConfig::default()),
            (
                "μ per second",
                CoreliteConfig {
                    mu_unit: MuUnit::PerSecond,
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    run_axis(
        "Edge adaptation epoch (paper leaves it open)",
        vec![
            (
                "100 ms (= core epoch)",
                CoreliteConfig {
                    edge_epoch: SimDuration::from_millis(100),
                    ..CoreliteConfig::default()
                },
            ),
            ("500 ms (default)", CoreliteConfig::default()),
            (
                "1 s (= slow-start step)",
                CoreliteConfig {
                    edge_epoch: SimDuration::from_secs(1),
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    run_axis(
        "Core congestion epoch (paper: 100 ms; §4.4 sensitivity)",
        vec![
            (
                "50 ms",
                CoreliteConfig {
                    core_epoch: SimDuration::from_millis(50),
                    ..CoreliteConfig::default()
                },
            ),
            ("100 ms (default)", CoreliteConfig::default()),
            (
                "200 ms",
                CoreliteConfig {
                    core_epoch: SimDuration::from_millis(200),
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    run_axis(
        "Marking threshold K1 (§4.4 sensitivity)",
        vec![
            ("K1 = 1 (default)", CoreliteConfig::default()),
            (
                "K1 = 2",
                CoreliteConfig {
                    k1: 2,
                    ..CoreliteConfig::default()
                },
            ),
            (
                "K1 = 4",
                CoreliteConfig {
                    k1: 4,
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    run_axis(
        "Edge decrease rule (absolute β·m vs multiplicative LIMD)",
        vec![
            ("absolute, β = 1 (default)", CoreliteConfig::default()),
            (
                "multiplicative, β = 0.05",
                CoreliteConfig {
                    beta: 0.05,
                    decrease: DecreasePolicy::Multiplicative,
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    run_axis(
        "Additive increase scaling (flat α vs α·w)",
        vec![
            ("flat α (paper, default)", CoreliteConfig::default()),
            (
                "α·w",
                CoreliteConfig {
                    alpha_per_weight: true,
                    ..CoreliteConfig::default()
                },
            ),
        ],
    );

    // Link latency sensitivity (§4.4: "channels with large latencies").
    println!("## Link propagation delay (default config)\n");
    print_header();
    for (label, delay_ms) in [("2 ms", 2u64), ("40 ms (paper)", 40), ("100 ms", 100)] {
        let link = LinkSpec::new(4_000_000, SimDuration::from_millis(delay_ms), 40);
        let result = fig5_6(SEED).run_with_link(&Corelite::default(), link);
        print_row(label, &result);
    }
    println!();
}

fn run_axis(title: &str, cases: Vec<(&str, CoreliteConfig)>) {
    println!("## {title}\n");
    print_header();
    for (label, cfg) in cases {
        let result = fig5_6(SEED).run(&Corelite::new(cfg));
        print_row(label, &result);
    }
    println!();
}

fn print_header() {
    println!(
        "| variant | drops | agg rate (of {:.0}) | bottleneck util | Jain | mean settle (s) |",
        topology::LINK_CAPACITY_PPS
    );
    println!("|---|---|---|---|---|---|");
}

fn print_row(label: &str, result: &ExperimentResult) {
    let horizon = result.scenario.horizon;
    let from = SimTime::from_secs(60);
    let agg: f64 = (0..result.scenario.flows.len())
        .map(|i| result.mean_rate_in(i, from, horizon))
        .sum();
    let (mean_settle, unsettled) = mean_convergence(
        result,
        horizon - SimDuration::from_secs(1),
        0.25,
        SimDuration::from_secs(10),
    );
    let settle = match mean_settle {
        Some(m) if unsettled == 0 => format!("{m:.1}"),
        Some(m) => format!("{m:.1} ({unsettled} unsettled)"),
        None => "never".into(),
    };
    println!(
        "| {label} | {} | {agg:.1} | {:.3} | {:.4} | {settle} |",
        result.total_drops(),
        result.report.links[0].utilization,
        window_jain_index(result, from, horizon),
    );
}
