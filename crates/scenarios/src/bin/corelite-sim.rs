//! `corelite-sim` — run a scenario file under a chosen discipline and
//! report the outcome.
//!
//! ```text
//! corelite-sim <scenario-file> [--discipline <name>] [--shards <n>]
//!              [--csv out.csv] [--svg out.svg]
//! ```
//!
//! `--discipline` accepts any name in the discipline registry
//! ([`scenarios::discipline::names`]); the default is `corelite`.
//! `--shards` runs the scenario on the sharded parallel engine with `n`
//! workers, overriding any `shards` directive in the file; results are
//! byte-identical at every shard count.
//!
//! The scenario format is described in [`scenarios::dsl`]; an example:
//!
//! ```text
//! name     demo
//! topology paper
//! horizon  120
//! flow     route=0-1 weight=1
//! flow     route=0-1 weight=2
//! flow     route=0-2 weight=3 start=40 min_rate=50
//! ```
//!
//! The report compares each flow's measured steady-state rate (last 25%
//! of the run) against the analytic weighted max-min share and prints
//! drop and delay statistics.

use std::fs;
use std::process::ExitCode;

use scenarios::discipline::{self, Discipline};
use scenarios::dsl::parse_scenario;
use scenarios::plot::{render_lines, PlotSpec};
use scenarios::report::{
    rate_series_csv, steady_state_summary, summary_markdown, window_jain_index,
};
use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut discipline: Box<dyn Discipline> =
        discipline::by_name("corelite").expect("corelite is registered");
    let mut csv_out: Option<String> = None;
    let mut svg_out: Option<String> = None;
    let mut shards: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--discipline" => {
                let value = it.next();
                match value.as_deref().and_then(discipline::by_name) {
                    Some(d) => discipline = d,
                    None => {
                        eprintln!(
                            "--discipline needs one of {}, got {value:?}",
                            discipline::names().join("|")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--csv" => csv_out = it.next(),
            "--svg" => svg_out = it.next(),
            "--shards" => {
                let value = it.next();
                match value.as_deref().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => shards = Some(n),
                    _ => {
                        eprintln!("--shards needs a positive integer, got {value:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: corelite-sim <scenario-file> [--discipline {}] \
                     [--shards n] [--csv out.csv] [--svg out.svg]",
                    discipline::names().join("|")
                );
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: corelite-sim <scenario-file> [options]; try --help");
        return ExitCode::from(2);
    };

    let text = match fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut scenario = match parse_scenario(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = shards {
        scenario.shards = n;
    }

    eprintln!(
        "running `{}` on `{}` under {} ({} flows, {} simulated, {} shard{})...",
        scenario.name,
        scenario.topology.name,
        discipline.name(),
        scenario.flows.len(),
        scenario.horizon,
        scenario.shards,
        if scenario.shards == 1 { "" } else { "s" }
    );
    let result = scenario.run(discipline.as_ref());

    let horizon = result.scenario.horizon;
    let from = SimTime::from_secs_f64(horizon.as_secs_f64() * 0.75);
    println!("# `{}` under {}", scenario.name, result.discipline_name);
    println!(
        "\n## steady state (last 25% of the run, t ∈ [{:.0}s, {:.0}s))\n",
        from.as_secs_f64(),
        horizon.as_secs_f64()
    );
    print!(
        "{}",
        summary_markdown(&steady_state_summary(&result, from, horizon))
    );
    println!(
        "\nweighted Jain index: {:.4}",
        window_jain_index(&result, from, horizon)
    );
    println!("total drops: {}", result.total_drops());
    for (i, f) in result.report.flows.iter().enumerate() {
        if let (Some(p50), Some(p99)) = (f.delay_quantile(0.5), f.delay_quantile(0.99)) {
            println!(
                "flow {:2}: delivered {:7}, delay p50 {:6.1} ms, p99 {:6.1} ms",
                i + 1,
                f.delivered_packets,
                p50 * 1e3,
                p99 * 1e3
            );
        }
    }

    if let Some(path) = csv_out {
        let csv = rate_series_csv(&result, SimDuration::from_millis(500));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("rate series written to {path}");
    }
    if let Some(path) = svg_out {
        let smoothed: Vec<TimeSeries> = (0..result.scenario.flows.len())
            .map(|i| {
                result
                    .rate_series(i)
                    .resample_mean(SimDuration::from_secs(1))
            })
            .collect();
        let series: Vec<(String, &TimeSeries)> = smoothed
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("flow{}", i + 1), s))
            .collect();
        let spec = PlotSpec {
            title: format!("{} ({})", scenario.name, result.discipline_name),
            ..PlotSpec::default()
        };
        if let Err(e) = fs::write(&path, render_lines(&spec, &series)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("plot written to {path}");
    }
    ExitCode::SUCCESS
}
