//! `churn` — flow-lifecycle metrics under dynamic arrivals.
//!
//! ```text
//! cargo run --release -p scenarios --bin churn [-- --serial] [-- --smoke]
//! ```
//!
//! Runs the adaptive disciplines (`corelite`, `csfq`) on a paper-chain
//! workload where a Poisson process creates Pareto-sized flows on top of
//! a static background mix, and prints a markdown table of arrivals,
//! completions, flow-completion-time and settling distributions, peak
//! concurrency, and the recycled flow-table footprint. The sweep goes
//! through the deterministic parallel executor, so the table is
//! byte-identical across runs and across `--serial` execution — the
//! property the CI smoke step checks with `cmp`. `--smoke` shrinks the
//! horizon and arrival volume for CI.

use corelite::CoreliteConfig;
use csfq::CsfqConfig;
use scenarios::churn::{churn_markdown, churn_rows};
use scenarios::discipline::{Corelite, Csfq, Discipline};
use scenarios::topology::Route;
use scenarios::{Scenario, ScenarioChurn, ScenarioFlow};
use sim_core::time::SimTime;

const SEED: u64 = 20000; // ICDCS 2000

/// A paper-chain scenario with static background flows plus churn:
/// one long-lived weight-2 flow per chain stretch, and Poisson arrivals
/// drawing one-hop and full-chain templates with mixed weights.
fn churn_scenario(smoke: bool) -> Scenario {
    let (horizon, arrival_rate, window_stop) = if smoke {
        (40u64, 5.0, 20u64)
    } else {
        (120u64, 20.0, 90u64)
    };
    let background = vec![
        ScenarioFlow::best_effort(Route::new(0, 3), 2, SimTime::ZERO),
        ScenarioFlow::best_effort(Route::new(0, 1), 2, SimTime::ZERO),
        ScenarioFlow::best_effort(Route::new(2, 3), 2, SimTime::ZERO),
    ];
    Scenario::paper("paper_churn", background, SimTime::from_secs(horizon), SEED).with_churn(
        ScenarioChurn::new(arrival_rate, 50.0, 100.0)
            .route(Route::new(0, 1))
            .route(Route::new(1, 2))
            .route(Route::new(0, 3))
            .weights(vec![1, 2, 4])
            .window(SimTime::ZERO, SimTime::from_secs(window_stop)),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let serial = args.iter().any(|a| a == "--serial");
    let smoke = args.iter().any(|a| a == "--smoke");
    // Churn workloads are short-flow dominated: the default 1 pkt/s
    // initial rate would leave sub-second flows without a single
    // delivery, so give the edges a faster start (still below any fair
    // share of the 500 pkt/s paper link).
    let corelite_config = CoreliteConfig {
        initial_rate: 25.0,
        ..CoreliteConfig::default()
    };
    let csfq_config = CsfqConfig {
        initial_rate: 25.0,
        ..CsfqConfig::default()
    };
    let registry: Vec<Box<dyn Discipline>> = vec![
        Box::new(Corelite::new(corelite_config)),
        Box::new(Csfq::new(csfq_config)),
    ];
    let scenarios = vec![churn_scenario(smoke)];
    eprintln!(
        "running {} disciplines × {} churn workloads ({} executor)...",
        registry.len(),
        scenarios.len(),
        if serial { "serial" } else { "parallel" }
    );
    let rows = churn_rows(&scenarios, &registry, serial);
    println!("# Flow lifecycle under churn\n");
    print!("{}", churn_markdown(&rows));
    println!(
        "\nEach row runs a Poisson arrival process (Pareto flow sizes, mixed\n\
         weight classes) over a static background mix on the paper chain.\n\
         FCT is arrival to last delivered packet; settle is arrival to first\n\
         delivery. `peak slots` bounds the recycled flow-table footprint —\n\
         it must track peak concurrency, not total arrivals — and `stale`\n\
         counts discarded events that referenced a recycled slot's previous\n\
         occupant (0 whenever the linger covers residual in-flight time)."
    );
}
