//! `telemetry` — per-epoch control-plane probe dump and convergence
//! diagnostics on the paper's §4.2 schedule (Figure-2 chain).
//!
//! ```text
//! cargo run --release -p scenarios --bin telemetry [-- --smoke] [-- --out DIR]
//! ```
//!
//! Runs Figure 5/6's simultaneous-start workload under Corelite with the
//! stateless selector, Corelite with the bounded marker cache, and the
//! CSFQ baseline, each with a [`RingProbe`] installed on every node.
//! The probes capture the disciplines' per-epoch internals — detector
//! `q_avg` and feedback count, selector `r_av`/`w_av`/`p_w`/deficit,
//! per-flow granted rate `b_g` and feedback maximum `m_f`, CSFQ fair
//! share `alpha` — and the run dumps each stream as JSONL under the
//! output directory (default `target/telemetry`). Everything is
//! deterministic: two invocations produce byte-identical stdout and
//! JSONL files, which CI checks.
//!
//! Stdout is a markdown report: per-variant sample inventories, the
//! settling-time/oscillation table against the analytic weighted
//! max-min reference, the Jain-index trajectory, and a cross-variant
//! settling diff table. `--smoke` shrinks the horizon for CI.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use corelite::{CoreliteConfig, SelectorKind};
use csfq::CsfqConfig;
use netsim::telemetry::{Probe, RingProbe};
use scenarios::discipline::{Corelite, Csfq, Discipline};
use scenarios::report::{
    jain_trajectory, jain_trajectory_markdown, settling_markdown, settling_summary, SettlingRow,
};
use scenarios::{fig5_6, ExperimentResult};
use sim_core::event::QueueBackend;
use sim_core::time::{SimDuration, SimTime};

const SEED: u64 = 20000; // ICDCS 2000

/// Ring capacity per variant: comfortably above the ~10^5 samples an
/// 80 s Figure-2 run publishes, so nothing is overwritten.
const PROBE_CAPACITY: usize = 1 << 18;

fn variants() -> Vec<(&'static str, Box<dyn Discipline>)> {
    vec![
        (
            "corelite-stateless",
            Box::new(Corelite::new(CoreliteConfig::default())) as Box<dyn Discipline>,
        ),
        (
            "corelite-cache",
            Box::new(Corelite::new(
                CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 512 }),
            )),
        ),
        ("csfq", Box::new(Csfq::new(CsfqConfig::default()))),
    ]
}

struct VariantRun {
    name: &'static str,
    result: ExperimentResult,
    probe: Rc<RefCell<RingProbe>>,
}

fn sample_inventory(probe: &RingProbe) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for record in probe.iter() {
        *counts.entry(record.sample.name).or_insert(0) += 1;
    }
    counts
}

fn settling_diff_markdown(runs: &[(&'static str, Vec<SettlingRow>)]) -> String {
    let mut out = String::from("| flow | weight | reference (pkt/s) |");
    for (name, _) in runs {
        out.push_str(&format!(" {name} settling (s) |"));
    }
    out.push('\n');
    out.push_str(&"|---".repeat(3 + runs.len()));
    out.push_str("|\n");
    let flows = runs.first().map_or(0, |(_, rows)| rows.len());
    for i in 0..flows {
        let base = &runs[0].1[i];
        out.push_str(&format!(
            "| {} | {} | {:.2} |",
            base.flow, base.weight, base.reference
        ));
        for (_, rows) in runs {
            match rows[i].settling_time {
                Some(t) => out.push_str(&format!(" {:.1} |", t.as_secs_f64())),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/telemetry".to_owned());
    let mut scenario = fig5_6(SEED);
    if smoke {
        scenario.horizon = SimTime::from_secs(40);
    }
    let probe_at = scenario.horizon;
    let tolerance = 0.3;
    let sustain = SimDuration::from_secs(10);

    std::fs::create_dir_all(&out_dir).expect("create telemetry output directory");
    let mut runs = Vec::new();
    for (name, discipline) in variants() {
        eprintln!("running {} on {}...", name, scenario.name);
        let probe = Rc::new(RefCell::new(RingProbe::with_capacity(PROBE_CAPACITY)));
        let result = scenario.run_instrumented(
            discipline.as_ref(),
            QueueBackend::Wheel,
            probe.clone() as Rc<RefCell<dyn Probe>>,
        );
        let path = format!("{out_dir}/{name}.jsonl");
        std::fs::write(&path, probe.borrow().to_jsonl()).expect("write probe JSONL");
        eprintln!("  {} samples -> {path}", probe.borrow().len());
        runs.push(VariantRun {
            name,
            result,
            probe,
        });
    }

    println!("# Control-plane telemetry: {}\n", scenario.name);
    // The output directory goes to stderr only: stdout must be
    // byte-identical across invocations regardless of `--out`.
    eprintln!("JSONL streams written to {out_dir}/");
    println!(
        "Probe horizon {} s, settling tolerance ±{:.0}% of the analytic\n\
         share, sustain {} s.\n",
        scenario.horizon.as_secs_f64(),
        tolerance * 100.0,
        sustain.as_secs_f64(),
    );

    println!("## Sample inventory\n");
    println!("| variant | samples | dropped | distinct metrics |");
    println!("|---|---|---|---|");
    for run in &runs {
        let probe = run.probe.borrow();
        let inventory = sample_inventory(&probe);
        println!(
            "| {} | {} | {} | {} |",
            run.name,
            probe.len(),
            probe.dropped(),
            inventory.len()
        );
    }
    println!();
    for run in &runs {
        let probe = run.probe.borrow();
        let inventory = sample_inventory(&probe);
        println!("### {}\n", run.name);
        println!("| metric | samples |");
        println!("|---|---|");
        for (name, count) in &inventory {
            println!("| {name} | {count} |");
        }
        println!();
    }

    let mut settled = Vec::new();
    for run in &runs {
        let rows = settling_summary(&run.result, probe_at, tolerance, sustain);
        println!("## Settling vs weighted max-min reference: {}\n", run.name);
        print!("{}", settling_markdown(&rows));
        println!();
        let traj = jain_trajectory(&run.result, SimDuration::from_secs(10));
        println!("### Jain-index trajectory: {}\n", run.name);
        print!("{}", jain_trajectory_markdown(&traj));
        println!();
        settled.push((run.name, rows));
    }

    println!("## Settling-time diff across variants\n");
    print!("{}", settling_diff_markdown(&settled));
    println!(
        "\nSettling is the first instant from which the 4-s-smoothed rate\n\
         stays inside the tolerance band around the flow's analytic share\n\
         for the sustain window; — marks flows that never settle within\n\
         the horizon. The diff table compares the marker-cache and\n\
         stateless Corelite selectors against the CSFQ baseline on the\n\
         same schedule and seed."
    );
}
