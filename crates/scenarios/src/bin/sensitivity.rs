//! Multi-seed robustness check: reruns the §4.2 and §4.3 comparisons
//! under ten different seeds and reports the spread of every headline
//! metric, confirming the EXPERIMENTS.md conclusions are not artifacts of
//! one random draw.
//!
//! ```text
//! cargo run --release -p scenarios --bin sensitivity [-- --serial]
//! ```
//!
//! The per-seed runs go through the deterministic parallel executor
//! ([`scenarios::exec::run_parallel`]); `--serial` forces one-at-a-time
//! execution, which produces byte-identical output.

use scenarios::exec::{run_parallel, run_serial};
use scenarios::report::{mean_convergence, window_jain_index};
use scenarios::{fig5_6, fig7_8, PaperFigure};
use sim_core::time::SimDuration;

struct Sample {
    jain: f64,
    drops: f64,
    settle: f64,
}

fn main() {
    let serial = std::env::args().skip(1).any(|a| a == "--serial");
    let seeds: Vec<u64> = (1..=10).collect();
    println!(
        "# Seed sensitivity ({} seeds per cell, {} executor)\n",
        seeds.len(),
        if serial { "serial" } else { "parallel" }
    );
    println!("| scenario | discipline | Jain (mean ± std) | drops (mean ± std) | mean settle s (mean ± std) |");
    println!("|---|---|---|---|---|");
    for (label, figure) in [
        ("fig5_6 §4.2", PaperFigure::Fig5),
        ("fig5_6 §4.2", PaperFigure::Fig6),
        ("fig7_8 §4.3", PaperFigure::Fig7),
        ("fig7_8 §4.3", PaperFigure::Fig8),
    ] {
        let discipline = figure.discipline();
        let samples: Vec<Sample> = sweep(serial, seeds.clone(), |seed| {
            let scenario = match figure {
                PaperFigure::Fig5 | PaperFigure::Fig6 => fig5_6(seed),
                _ => fig7_8(seed),
            };
            let horizon = scenario.horizon;
            let result = scenario.run(discipline.as_ref());
            let (settle, unsettled) = mean_convergence(
                &result,
                horizon - SimDuration::from_secs(1),
                0.25,
                SimDuration::from_secs(10),
            );
            Sample {
                jain: window_jain_index(&result, horizon - SimDuration::from_secs(20), horizon),
                drops: result.total_drops() as f64,
                settle: settle.unwrap_or(horizon.as_secs_f64()) + 10.0 * unsettled as f64, // penalize unsettled flows
            }
        });
        let (jm, js) = mean_std(samples.iter().map(|s| s.jain));
        let (dm, ds) = mean_std(samples.iter().map(|s| s.drops));
        let (sm, ss) = mean_std(samples.iter().map(|s| s.settle));
        println!(
            "| {label} | {} | {jm:.4} ± {js:.4} | {dm:.0} ± {ds:.0} | {sm:.1} ± {ss:.1} |",
            discipline.name()
        );
    }
    println!(
        "\nExpected shape across every seed: Corelite rows show (near-)zero\n\
         drops; CSFQ rows show hundreds to thousands; both stay above 0.98\n\
         Jain. Run `figures -- summary` for the single-seed detail (t=0\n\
         timestamp column omitted by design: runs are deterministic per seed)."
    );

    // Guard: the binary fails loudly if the headline conclusion flips.
    let corelite_drops = mean_of(PaperFigure::Fig5, &seeds, serial);
    let csfq_drops = mean_of(PaperFigure::Fig6, &seeds, serial);
    assert!(
        corelite_drops * 10.0 < csfq_drops,
        "drop asymmetry violated: corelite {corelite_drops}, csfq {csfq_drops}"
    );
}

/// Routes a sweep through the parallel executor or its serial twin.
fn sweep<T, R, F>(serial: bool, jobs: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if serial {
        run_serial(jobs, work)
    } else {
        run_parallel(jobs, work)
    }
}

fn mean_of(figure: PaperFigure, seeds: &[u64], serial: bool) -> f64 {
    let discipline = figure.discipline();
    let drops = sweep(serial, seeds.to_vec(), |seed| {
        fig5_6(seed).run(discipline.as_ref()).total_drops() as f64
    });
    drops.iter().sum::<f64>() / seeds.len() as f64
}

fn mean_std(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let v: Vec<f64> = values.collect();
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}
