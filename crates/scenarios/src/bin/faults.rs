//! `faults` — the control-loss degradation sweep across every
//! registered discipline.
//!
//! ```text
//! cargo run --release -p scenarios --bin faults [-- --serial] [-- --smoke]
//! ```
//!
//! Runs every discipline in [`scenarios::discipline::default_registry`]
//! on the paper's §4.2 schedule (Figure-2 chain) and the eight-flow
//! fat-tree mix, under control-message loss of 0, 5, 20 and 50%, and
//! prints a markdown table of the steady-state weighted Jain index and
//! aggregate goodput next to their degradation versus the loss-free
//! baseline. The sweep goes through the deterministic parallel executor,
//! so the table is byte-identical across runs and across `--serial`
//! (one-at-a-time) execution. `--smoke` shrinks the sweep to one
//! shortened scenario and two loss levels for CI.

use scenarios::discipline::default_registry;
use scenarios::fault::{degradation_markdown, degradation_rows};
use scenarios::{fig5_6, Scenario};
use sim_core::time::SimTime;

const SEED: u64 = 20000; // ICDCS 2000

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let serial = args.iter().any(|a| a == "--serial");
    let smoke = args.iter().any(|a| a == "--smoke");
    let registry = default_registry();
    let (scenarios, losses): (Vec<Scenario>, Vec<u32>) = if smoke {
        let mut short = fig5_6(SEED);
        short.horizon = SimTime::from_secs(40);
        (vec![short], vec![0, 20])
    } else {
        (
            vec![
                fig5_6(SEED),
                Scenario::fat_tree_mix(SimTime::from_secs(200), SEED),
            ],
            vec![0, 5, 20, 50],
        )
    };
    eprintln!(
        "running {} disciplines × {} workloads × {} loss levels ({} executor)...",
        registry.len(),
        scenarios.len(),
        losses.len(),
        if serial { "serial" } else { "parallel" }
    );
    let rows = degradation_rows(&scenarios, &registry, &losses, serial);
    println!("# Degradation under control-message loss\n");
    print!("{}", degradation_markdown(&rows));
    println!(
        "\nEach row injects the given control-loss percentage (lost marker\n\
         feedback and loss notifications) on top of a clean network; ΔJain\n\
         and Δgoodput are relative to the 0% row of the same scenario and\n\
         discipline. The open-loop disciplines (red/fred/fifo/greedy) carry\n\
         no feedback, so their rows double as a no-op control group — any\n\
         drift there would indicate a leak in the fault plumbing. Positive\n\
         deltas mean degradation (lower Jain / lower goodput than baseline)."
    );
}
