//! Regenerates every evaluation figure of the Corelite paper.
//!
//! ```text
//! cargo run --release -p scenarios --bin figures -- all
//! cargo run --release -p scenarios --bin figures -- fig5 fig6
//! cargo run --release -p scenarios --bin figures -- summary
//! ```
//!
//! For each figure the harness runs the corresponding scenario, writes the
//! plotted series to `results/<fig>_<discipline>.csv`, and prints an
//! expected-vs-measured table against the analytic weighted max-min
//! shares. `summary` reruns the Corelite-vs-CSFQ pairs and prints the
//! §4.4 comparison (convergence times, packet drops, fairness indices).

use std::fs;
use std::path::Path;

use scenarios::plot::{render_lines, PlotSpec};
use scenarios::report::{
    cumulative_csv, last_convergence, mean_convergence, rate_series_csv, steady_state_summary,
    summary_markdown, window_jain_index,
};
use scenarios::runner::ExperimentResult;
use scenarios::PaperFigure;
use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

const SEED: u64 = 20000; // ICDCS 2000
const RESULTS_DIR: &str = "results";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requested: Vec<&str> = args.iter().map(String::as_str).collect();
    if requested.is_empty() || requested.contains(&"all") {
        requested = vec![
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "jain", "summary",
        ];
    }
    fs::create_dir_all(RESULTS_DIR).expect("create results directory");

    let mut cache: Vec<(String, ExperimentResult)> = Vec::new();
    for name in requested {
        if name == "summary" {
            print_summary(&mut cache);
            continue;
        }
        if name == "jain" {
            emit_jain_figure(&mut cache);
            continue;
        }
        let Some(figure) = PaperFigure::from_name(name) else {
            eprintln!("unknown figure {name:?}; expected fig3..fig10, summary, or all");
            std::process::exit(2);
        };
        let idx = run_cached(&mut cache, figure);
        emit_figure(figure, &cache[idx].1);
    }
}

/// Runs (or reuses) the simulation behind `figure`. Figures sharing a
/// scenario and discipline (3/4) share one run.
fn run_cached(cache: &mut Vec<(String, ExperimentResult)>, figure: PaperFigure) -> usize {
    let scenario = figure.scenario(SEED);
    let discipline = figure.discipline();
    let key = format!("{}-{}", scenario.name, discipline.name());
    if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
        return pos;
    }
    eprintln!(
        "running {key} ({}s simulated)...",
        scenario.horizon.as_secs_f64()
    );
    let result = scenario.run(discipline.as_ref());
    cache.push((key, result));
    cache.len() - 1
}

fn emit_figure(figure: PaperFigure, result: &ExperimentResult) {
    let step = SimDuration::from_millis(500);
    let csv = if figure.is_cumulative() {
        cumulative_csv(result, step)
    } else {
        rate_series_csv(result, step)
    };
    let path = format!(
        "{RESULTS_DIR}/{}_{}.csv",
        figure.name(),
        result.discipline_name
    );
    fs::write(Path::new(&path), csv).expect("write figure CSV");
    let svg_path = format!(
        "{RESULTS_DIR}/{}_{}.svg",
        figure.name(),
        result.discipline_name
    );
    fs::write(Path::new(&svg_path), render_figure_svg(figure, result)).expect("write figure SVG");
    println!(
        "\n## {} ({}, scenario `{}`)",
        figure.name(),
        result.discipline_name,
        result.scenario.name
    );
    println!("series written to `{path}` and `{svg_path}`");
    let horizon = result.scenario.horizon;
    let windows: Vec<(SimTime, SimTime, &str)> = match figure {
        PaperFigure::Fig3 | PaperFigure::Fig4 => vec![
            (
                SimTime::from_secs(150),
                SimTime::from_secs(250),
                "15 flows (t∈[150,250))",
            ),
            (
                SimTime::from_secs(400),
                SimTime::from_secs(500),
                "20 flows (t∈[400,500))",
            ),
            (
                SimTime::from_secs(650),
                SimTime::from_secs(750),
                "15 flows (t∈[650,750))",
            ),
        ],
        PaperFigure::Fig9 | PaperFigure::Fig10 => vec![
            (
                SimTime::from_secs(40),
                SimTime::from_secs(60),
                "steady (t∈[40,60))",
            ),
            (SimTime::from_secs(120), horizon, "post-churn (t∈[120,160))"),
        ],
        _ => vec![(SimTime::from_secs(60), horizon, "steady state (t∈[60,80))")],
    };
    for (from, to, label) in windows {
        let summaries = steady_state_summary(result, from, to);
        println!("\n### {label}");
        print!("{}", summary_markdown(&summaries));
        println!(
            "Jain index (weighted, active flows): {:.4}",
            window_jain_index(result, from, to)
        );
    }
    println!("total packet drops: {}", result.total_drops());
}

/// Renders the figure's series (allotted rate, or cumulative service for
/// Figure 4) in the paper's plotting style.
fn render_figure_svg(figure: PaperFigure, result: &ExperimentResult) -> String {
    let n = result.scenario.flows.len();
    let smoothed: Vec<TimeSeries> = (0..n)
        .map(|i| {
            if figure.is_cumulative() {
                result.report.flows[i].cumulative.clone()
            } else {
                result
                    .allotted_rate(i)
                    .resample_mean(SimDuration::from_secs(1))
            }
        })
        .collect();
    let series: Vec<(String, &TimeSeries)> = smoothed
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("flow{}", i + 1), s))
        .collect();
    let spec = PlotSpec {
        title: format!(
            "{} — {} ({})",
            figure.name(),
            result.scenario.name,
            result.discipline_name
        ),
        y_label: if figure.is_cumulative() {
            "total_sent".to_owned()
        } else {
            "alloted_rate".to_owned()
        },
        ..PlotSpec::default()
    };
    render_lines(&spec, &series)
}

/// Supplementary figure: the weighted Jain fairness index over time for
/// the §4.2 simultaneous-start scenario, Corelite vs CSFQ — the
/// "convergence to fairness" claim as one curve per discipline.
fn emit_jain_figure(cache: &mut Vec<(String, ExperimentResult)>) {
    let mut curves: Vec<(String, TimeSeries)> = Vec::new();
    for figure in [PaperFigure::Fig5, PaperFigure::Fig6] {
        let idx = run_cached(cache, figure);
        let (_, result) = &cache[idx];
        let series_refs: Vec<(&TimeSeries, u32)> = (0..result.scenario.flows.len())
            .map(|i| (result.allotted_rate(i), result.scenario.flows[i].weight))
            .collect();
        let jain = fairness::metrics::jain_series(
            &series_refs,
            result.scenario.horizon,
            SimDuration::from_secs(2),
        );
        curves.push((result.discipline_name.to_owned(), jain));
    }
    let series: Vec<(String, &TimeSeries)> = curves.iter().map(|(n, s)| (n.clone(), s)).collect();
    let spec = PlotSpec {
        title: "weighted Jain index over time — §4.2 simultaneous start".to_owned(),
        y_label: "jain_index".to_owned(),
        ..PlotSpec::default()
    };
    let path = format!("{RESULTS_DIR}/jain_fig5_6.svg");
    fs::write(&path, render_lines(&spec, &series)).expect("write jain SVG");
    println!(
        "
## jain (supplementary)
fairness-over-time curves written to `{path}`"
    );
    for (name, s) in &curves {
        let last = s.last_value().unwrap_or(0.0);
        println!("  {name}: final weighted Jain {last:.4}");
    }
}

fn print_summary(cache: &mut Vec<(String, ExperimentResult)>) {
    println!("\n## §4.4 summary: Corelite vs CSFQ");
    println!(
        "| scenario | discipline | mean settle (s) | last settle (s) | total drops | Jain (steady) | p99 delay (ms) |"
    );
    println!("|---|---|---|---|---|---|---|");
    for figure in [
        PaperFigure::Fig5,
        PaperFigure::Fig6,
        PaperFigure::Fig7,
        PaperFigure::Fig8,
        PaperFigure::Fig9,
        PaperFigure::Fig10,
    ] {
        let idx = run_cached(cache, figure);
        let (_, result) = &cache[idx];
        let horizon = result.scenario.horizon;
        let steady_from = horizon - SimDuration::from_secs(20);
        let probe = horizon - SimDuration::from_secs(1);
        let last = last_convergence(result, probe, 0.25, SimDuration::from_secs(10));
        let last_str = last
            .map(|t| format!("{:.1}", t.as_secs_f64()))
            .unwrap_or_else(|| "never".to_owned());
        let (mean, unsettled) = mean_convergence(result, probe, 0.25, SimDuration::from_secs(10));
        let mean_str = match mean {
            Some(m) if unsettled == 0 => format!("{m:.1}"),
            Some(m) => format!("{m:.1} ({unsettled} unsettled)"),
            None => "never".to_owned(),
        };
        let p99s: Vec<f64> = result
            .report
            .flows
            .iter()
            .filter_map(|f| f.delay_quantile(0.99))
            .collect();
        let p99_ms = if p99s.is_empty() {
            0.0
        } else {
            1e3 * p99s.iter().sum::<f64>() / p99s.len() as f64
        };
        println!(
            "| {} | {} | {} | {} | {} | {:.4} | {:.0} |",
            result.scenario.name,
            result.discipline_name,
            mean_str,
            last_str,
            result.total_drops(),
            window_jain_index(result, steady_from, horizon),
            p99_ms,
        );
    }
}
