//! `compare` — the §4.4 summary table across every registered discipline.
//!
//! ```text
//! cargo run --release -p scenarios --bin compare [-- --serial]
//! ```
//!
//! Runs every discipline in [`scenarios::discipline::default_registry`]
//! on two workloads — the paper's §4.2 simultaneous-start schedule on the
//! Figure-2 chain, and an eight-flow mix on the leaf–spine fat-tree (a
//! non-chain [`scenarios::topology::TopologySpec`]) — and prints one
//! table of the §4.4 headline metrics: weighted Jain index over the
//! steady-state window, total packet drops, mean/last settling time
//! against each discipline's analytic reference allocation, and mean p99
//! queueing delay. The sweep goes through the deterministic parallel
//! executor; `--serial` forces one-at-a-time execution (same output).

use scenarios::discipline::default_registry;
use scenarios::exec::{run_parallel, run_serial};
use scenarios::report::{last_convergence, mean_convergence, window_jain_index};
use scenarios::runner::ExperimentResult;
use scenarios::{fig5_6, Scenario};
use sim_core::time::{SimDuration, SimTime};

const SEED: u64 = 20000; // ICDCS 2000

fn scenario(index: usize) -> Scenario {
    match index {
        0 => fig5_6(SEED),
        1 => Scenario::fat_tree_mix(SimTime::from_secs(200), SEED),
        _ => unreachable!("two comparison workloads"),
    }
}

fn main() {
    let serial = std::env::args().skip(1).any(|a| a == "--serial");
    let registry = default_registry();
    let jobs: Vec<(usize, usize)> = (0..2)
        .flat_map(|s| (0..registry.len()).map(move |d| (s, d)))
        .collect();
    eprintln!(
        "running {} disciplines × 2 workloads ({} executor)...",
        registry.len(),
        if serial { "serial" } else { "parallel" }
    );
    let work = |(s, d): (usize, usize)| scenario(s).run(registry[d].as_ref());
    let results: Vec<ExperimentResult> = if serial {
        run_serial(jobs, work)
    } else {
        run_parallel(jobs, work)
    };

    println!("# §4.4 comparison: every registered discipline\n");
    println!(
        "| scenario | topology | discipline | Jain (steady) | total drops | mean settle (s) | last settle (s) | p99 delay (ms) |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for result in &results {
        println!("{}", row(result));
    }
    println!(
        "\nSettling times are measured against each discipline's own analytic\n\
         reference (weighted max-min for corelite/csfq/fifo, equal shares\n\
         capped at the offered rate for red/fred/greedy); `never` means a\n\
         flow stayed outside the 25% band. Weight-oblivious schemes keep a\n\
         high *unweighted* smoothness yet score poorly on the weighted Jain\n\
         column — the paper's core argument."
    );
}

fn row(result: &ExperimentResult) -> String {
    let horizon = result.scenario.horizon;
    let steady_from = horizon - SimDuration::from_secs(20);
    let probe = horizon - SimDuration::from_secs(1);
    let last = last_convergence(result, probe, 0.25, SimDuration::from_secs(10));
    let last_str = last
        .map(|t| format!("{:.1}", t.as_secs_f64()))
        .unwrap_or_else(|| "never".to_owned());
    let (mean, unsettled) = mean_convergence(result, probe, 0.25, SimDuration::from_secs(10));
    let mean_str = match mean {
        Some(m) if unsettled == 0 => format!("{m:.1}"),
        Some(m) => format!("{m:.1} ({unsettled} unsettled)"),
        None => "never".to_owned(),
    };
    let p99s: Vec<f64> = result
        .report
        .flows
        .iter()
        .filter_map(|f| f.delay_quantile(0.99))
        .collect();
    let p99_ms = if p99s.is_empty() {
        0.0
    } else {
        1e3 * p99s.iter().sum::<f64>() / p99s.len() as f64
    };
    format!(
        "| {} | {} | {} | {:.4} | {} | {} | {} | {:.0} |",
        result.scenario.name,
        result.scenario.topology.name,
        result.discipline_name,
        window_jain_index(result, steady_from, horizon),
        result.total_drops(),
        mean_str,
        last_str,
        p99_ms,
    )
}
