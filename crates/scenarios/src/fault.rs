//! Fault injection at the scenario layer, plus the loss-degradation
//! sweep shared by the `faults` binary and the robustness tests.
//!
//! [`FaultSpec`] is the plain-data mirror of [`netsim::FaultPlan`]: it
//! speaks the scenario vocabulary — core indices and core-link indices
//! as used by [`crate::topology::TopologySpec`], times in seconds — and
//! is translated to simulator identifiers by [`FaultSpec::to_plan`].
//! The translation leans on a [`crate::runner::Scenario::run_with_link`]
//! invariant: core routers are built first, so core index `i` is
//! `NodeId(i)` and topology link index `j` is `LinkId(j)`.
//!
//! [`degradation_rows`] runs a `scenarios × disciplines × loss levels`
//! sweep through the deterministic executor and reports, per cell, the
//! steady-state weighted Jain index and aggregate goodput next to their
//! loss-free baselines. [`degradation_markdown`] renders the table with
//! fixed-precision formatting, so equal sweeps yield identical bytes.

use netsim::ids::{LinkId, NodeId};
use netsim::FaultPlan;
use sim_core::time::{SimDuration, SimTime};

use crate::discipline::Discipline;
use crate::exec::{run_parallel, run_serial};
use crate::report::window_jain_index;
use crate::runner::Scenario;

/// Scenario-level fault description: which failures to inject, keyed by
/// the scenario's own core/link indices and expressed in seconds.
///
/// # Example
///
/// ```
/// use scenarios::fault::FaultSpec;
///
/// let spec = FaultSpec::new()
///     .control_loss(0.2)
///     .flap(1, 10.0, 12.0)
///     .pause(0, 30.0, 31.0);
/// assert!(!spec.is_empty());
/// assert!(FaultSpec::new().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability that any control message (marker feedback or loss
    /// notification) is silently lost, in `[0, 1]`.
    pub control_loss: f64,
    /// Fixed extra delay added to every delivered control message, in
    /// seconds.
    pub control_delay: f64,
    /// Upper bound of the uniform jitter added on top of
    /// `control_delay`, in seconds.
    pub control_jitter: f64,
    /// Per-core-link marker-strip probability `(link index, p)`.
    pub marker_loss: Vec<(usize, f64)>,
    /// Link-flap windows `(link index, from, until)` in seconds; packets
    /// entering the link inside the window are dropped.
    pub flaps: Vec<(usize, f64, f64)>,
    /// Core-router pause windows `(core index, from, until)` in seconds.
    pub pauses: Vec<(usize, f64, f64)>,
}

impl FaultSpec {
    /// An empty specification: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the specification injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.control_loss <= 0.0
            && self.control_delay <= 0.0
            && self.control_jitter <= 0.0
            && self.marker_loss.is_empty()
            && self.flaps.is_empty()
            && self.pauses.is_empty()
    }

    /// Sets the control-message loss probability (builder-style).
    pub fn control_loss(mut self, p: f64) -> Self {
        self.control_loss = p;
        self
    }

    /// Sets the control delay and jitter in seconds (builder-style).
    pub fn control_delay(mut self, delay: f64, jitter: f64) -> Self {
        self.control_delay = delay;
        self.control_jitter = jitter;
        self
    }

    /// Adds a marker-strip probability on core link `link`
    /// (builder-style).
    pub fn marker_loss(mut self, link: usize, p: f64) -> Self {
        self.marker_loss.push((link, p));
        self
    }

    /// Adds a flap window on core link `link` (builder-style).
    pub fn flap(mut self, link: usize, from: f64, until: f64) -> Self {
        self.flaps.push((link, from, until));
        self
    }

    /// Adds a pause window on core router `core` (builder-style).
    pub fn pause(mut self, core: usize, from: f64, until: f64) -> Self {
        self.pauses.push((core, from, until));
        self
    }

    /// Translates the specification into a simulator [`FaultPlan`],
    /// mapping core index `i` to `NodeId(i)` and topology link index
    /// `j` to `LinkId(j)` (the construction order guaranteed by
    /// [`Scenario::run_with_link`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or inverted windows (the
    /// underlying plan validates its inputs).
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if self.control_loss > 0.0 {
            plan = plan.control_loss(self.control_loss);
        }
        if self.control_delay > 0.0 || self.control_jitter > 0.0 {
            plan = plan.control_delay(
                SimDuration::from_secs_f64(self.control_delay),
                SimDuration::from_secs_f64(self.control_jitter),
            );
        }
        for &(link, p) in &self.marker_loss {
            plan = plan.marker_loss(LinkId::from_index(link), p);
        }
        for &(link, from, until) in &self.flaps {
            plan = plan.flap(
                LinkId::from_index(link),
                SimTime::from_secs_f64(from),
                SimTime::from_secs_f64(until),
            );
        }
        for &(core, from, until) in &self.pauses {
            plan = plan.pause(
                NodeId::from_index(core),
                SimTime::from_secs_f64(from),
                SimTime::from_secs_f64(until),
            );
        }
        plan
    }
}

/// One cell of the loss-degradation table.
#[derive(Debug, Clone)]
pub struct DegradationRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Topology name.
    pub topology: &'static str,
    /// Discipline name.
    pub discipline: &'static str,
    /// Control-message loss percentage injected for this cell.
    pub loss_pct: u32,
    /// Weighted Jain index over the last 20 s of the run.
    pub jain: f64,
    /// Aggregate steady-state goodput across all flows, packets/s.
    pub goodput: f64,
    /// Total packets dropped anywhere during the run.
    pub drops: u64,
    /// Jain degradation versus the loss-free baseline, percent
    /// (positive = worse than baseline).
    pub jain_drop_pct: f64,
    /// Goodput degradation versus the loss-free baseline, percent.
    pub goodput_drop_pct: f64,
}

/// Runs every `(scenario, discipline, loss level)` combination and
/// returns one [`DegradationRow`] per cell, in sweep order. The first
/// entry of `loss_pcts` is the baseline the deltas are computed
/// against (pass `0` there for a loss-free reference). Each lossy cell
/// layers `control_loss` on top of whatever faults the scenario
/// already carries.
///
/// The sweep goes through [`run_parallel`] unless `serial` is set;
/// both orders produce identical rows.
///
/// # Panics
///
/// Panics if `loss_pcts` is empty or any percentage exceeds 100.
pub fn degradation_rows(
    scenarios: &[Scenario],
    registry: &[Box<dyn Discipline>],
    loss_pcts: &[u32],
    serial: bool,
) -> Vec<DegradationRow> {
    assert!(!loss_pcts.is_empty(), "need at least a baseline loss level");
    assert!(
        loss_pcts.iter().all(|&p| p <= 100),
        "loss percentages must be at most 100"
    );
    let jobs: Vec<(usize, usize, usize)> = (0..scenarios.len())
        .flat_map(|s| {
            (0..registry.len()).flat_map(move |d| (0..loss_pcts.len()).map(move |l| (s, d, l)))
        })
        .collect();
    let work = |(s, d, l): (usize, usize, usize)| {
        let mut scenario = scenarios[s].clone();
        let pct = loss_pcts[l];
        if pct > 0 {
            scenario.faults = scenario.faults.control_loss(pct as f64 / 100.0);
        }
        let result = scenario.run(registry[d].as_ref());
        let horizon = result.scenario.horizon;
        let steady_from = horizon - SimDuration::from_secs(20);
        let goodput: f64 = (0..result.scenario.flows.len())
            .filter_map(|i| result.report.flows[i].mean_goodput_in(steady_from, horizon))
            .sum();
        (
            window_jain_index(&result, steady_from, horizon),
            goodput,
            result.total_drops(),
        )
    };
    let cells = if serial {
        run_serial(jobs.clone(), work)
    } else {
        run_parallel(jobs.clone(), work)
    };
    jobs.iter()
        .zip(&cells)
        .map(|(&(s, d, l), &(jain, goodput, drops))| {
            // The baseline cell shares (s, d) and sits at loss index 0.
            let base = jobs
                .iter()
                .position(|&(bs, bd, bl)| bs == s && bd == d && bl == 0)
                .expect("every cell has a baseline");
            let (base_jain, base_goodput, _) = cells[base];
            let drop_pct = |base: f64, now: f64| {
                if base > 0.0 {
                    100.0 * (base - now) / base
                } else {
                    0.0
                }
            };
            DegradationRow {
                scenario: scenarios[s].name,
                topology: scenarios[s].topology.name,
                discipline: registry[d].name(),
                loss_pct: loss_pcts[l],
                jain,
                goodput,
                drops,
                jain_drop_pct: drop_pct(base_jain, jain),
                goodput_drop_pct: drop_pct(base_goodput, goodput),
            }
        })
        .collect()
}

/// Renders [`degradation_rows`] output as a markdown table. All numeric
/// columns use fixed precision, so identical rows render to identical
/// bytes — the determinism contract the `faults` binary is tested
/// against.
pub fn degradation_markdown(rows: &[DegradationRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "| scenario | topology | discipline | loss % | Jain (steady) | ΔJain % | goodput (pkt/s) | Δgoodput % | drops |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.4} | {:+.1} | {:.1} | {:+.1} | {} |\n",
            r.scenario,
            r.topology,
            r.discipline,
            r.loss_pct,
            r.jain,
            r.jain_drop_pct,
            r.goodput,
            r.goodput_drop_pct,
            r.drops,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ids::FlowId;

    #[test]
    fn empty_spec_produces_empty_plan() {
        assert!(FaultSpec::new().is_empty());
        assert!(FaultSpec::new().to_plan().is_empty());
    }

    #[test]
    fn spec_translates_indices_to_ids() {
        let spec = FaultSpec::new()
            .control_loss(0.25)
            .control_delay(0.05, 0.01)
            .marker_loss(2, 0.5)
            .flap(1, 3.0, 4.0)
            .pause(0, 6.0, 7.0);
        assert!(!spec.is_empty());
        let plan = spec.to_plan();
        assert!(!plan.is_empty());
        assert_eq!(plan.control_loss, 0.25);
        assert_eq!(plan.marker_loss, vec![(LinkId::from_index(2), 0.5)]);
        assert_eq!(plan.flaps.len(), 1);
        assert_eq!(plan.flaps[0].0, LinkId::from_index(1));
        assert_eq!(plan.pauses.len(), 1);
        assert_eq!(plan.pauses[0].0, NodeId::from_index(0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_rejected_at_translation() {
        let _ = FaultSpec::new().control_loss(1.5).to_plan();
    }

    #[test]
    fn degradation_rows_report_deltas_against_baseline() {
        use crate::runner::ScenarioFlow;
        use crate::topology::Route;
        let scenario = Scenario::paper(
            "mini",
            vec![
                ScenarioFlow::best_effort(Route::new(0, 1), 1, SimTime::ZERO),
                ScenarioFlow::best_effort(Route::new(0, 1), 2, SimTime::ZERO),
            ],
            SimTime::from_secs(30),
            7,
        );
        let registry = vec![crate::discipline::by_name("corelite").unwrap()];
        let rows = degradation_rows(&[scenario], &registry, &[0, 50], true);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].loss_pct, 0);
        assert_eq!(rows[0].jain_drop_pct, 0.0);
        assert_eq!(rows[0].goodput_drop_pct, 0.0);
        assert!(rows[0].jain > 0.9, "baseline Jain {}", rows[0].jain);
        assert_eq!(rows[1].loss_pct, 50);
        // Half the control messages lost: the table must still carry a
        // finite, formatted row (the *bound* on degradation lives in the
        // integration tests).
        assert!(rows[1].jain.is_finite() && rows[1].goodput.is_finite());
        let md = degradation_markdown(&rows);
        assert!(md.contains("| mini |"), "{md}");
        assert_eq!(md.lines().count(), 2 + rows.len());
        // Flow identities survive the sweep plumbing.
        let _ = FlowId::from_index(0);
    }
}
