//! The open discipline registry.
//!
//! A [`Discipline`] packages everything the experiment runner needs to
//! put a rate-management scheme on a topology: a name, per-role
//! [`RouterLogic`] factories (ingress edge, core, egress), and the
//! analytic-expectation hooks that tell the reference allocator how the
//! scheme's sources behave. The runner itself knows nothing about any
//! particular scheme — new disciplines plug in by implementing the trait
//! and (optionally) joining [`default_registry`], with no runner changes.
//!
//! Six disciplines ship in-tree:
//!
//! * [`Corelite`] — the paper's contribution: adaptive edges driven by
//!   selective marker feedback from stateless cores.
//! * [`Csfq`] — the weighted core-stateless fair queueing baseline.
//! * [`Red`] / [`Fred`] / [`Fifo`] / [`Greedy`] — the classic
//!   droptail/AQM reference points the paper positions itself against
//!   (§5): open-loop sources over RED, FRED, or plain FIFO cores.

use baselines::{FifoCore, FredConfig, FredCore, GreedySource, RedConfig, RedCore};
use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge};
use csfq::{CsfqConfig, CsfqCore, CsfqEdge};
use netsim::logic::{ForwardLogic, RouterLogic};
use netsim::Transport;

use crate::runner::ScenarioFlow;

/// A rate-management scheme the experiment runner can deploy.
///
/// Implementations must be cheap to share across threads: the parallel
/// executor hands one `&dyn Discipline` to every worker.
pub trait Discipline: Sync {
    /// Short lowercase name for file names, table headers, and the
    /// `--discipline` flag.
    fn name(&self) -> &'static str;

    /// Router logic for a core router.
    fn core_logic(&self, seed: u64) -> Box<dyn RouterLogic>;

    /// Router logic for `flow`'s ingress edge router (which is also the
    /// flow's traffic source).
    fn edge_logic(&self, seed: u64, flow: &ScenarioFlow) -> Box<dyn RouterLogic>;

    /// Router logic for a flow's egress edge router.
    fn egress_logic(&self, _seed: u64) -> Box<dyn RouterLogic> {
        Box::new(ForwardLogic)
    }

    /// The weight the analytic reference allocation should give `flow`.
    /// Weight-aware disciplines use the flow's configured weight;
    /// weight-oblivious ones (RED, FRED, greedy FIFO) compete as equals.
    fn reference_weight(&self, flow: &ScenarioFlow) -> f64 {
        flow.weight as f64
    }

    /// The rate this discipline's source offers for `flow`, in packets
    /// per second, when the sources are open-loop; `None` for adaptive
    /// edges that track whatever the network grants. A `Some` value caps
    /// the flow's analytic reference allocation.
    fn offered_rate(&self, _flow: &ScenarioFlow) -> Option<f64> {
        None
    }
}

/// Offered load of the open-loop sources used by the weight-oblivious
/// baselines, in packets per second: ~1.2× a fair share of the paper
/// link when five flows contend, so the bottleneck is genuinely
/// congested without burying it.
pub const GREEDY_SOURCE_PPS: f64 = 120.0;

/// Per-unit-weight rate of the cooperative [`Fifo`] sources: a flow of
/// weight `w` offers `30 · w` pkt/s, so the §4.2 workload (total weight
/// 30) oversubscribes the 500 pkt/s paper link by 1.8×.
pub const FIFO_PPS_PER_WEIGHT: f64 = 30.0;

/// The paper's discipline: Corelite edges and cores.
#[derive(Debug, Clone, Default)]
pub struct Corelite {
    /// Mechanism configuration shared by every edge and core.
    pub config: CoreliteConfig,
}

impl Corelite {
    /// A Corelite discipline with the given configuration.
    pub fn new(config: CoreliteConfig) -> Self {
        Corelite { config }
    }
}

impl Discipline for Corelite {
    fn name(&self) -> &'static str {
        "corelite"
    }

    fn core_logic(&self, seed: u64) -> Box<dyn RouterLogic> {
        Box::new(CoreliteCore::new(seed, self.config.clone()))
    }

    fn edge_logic(&self, seed: u64, flow: &ScenarioFlow) -> Box<dyn RouterLogic> {
        // The runner gives every static flow its own ingress edge, so
        // the transport choice is per-flow: the open-loop LIMD edge for
        // the default, a closed-loop go-back-N sender (window-LIMD or
        // Reno congestion control, Corelite markers either way) for the
        // ack-clocked transports.
        match flow.transport {
            Transport::Limd => Box::new(CoreliteEdge::new(seed, self.config.clone())),
            Transport::Gbn | Transport::Reno => Box::new(corelite::gbn_edge(&self.config)),
        }
    }
}

/// The weighted CSFQ baseline (SIGCOMM '98).
#[derive(Debug, Clone, Default)]
pub struct Csfq {
    /// Estimator configuration shared by every edge and core.
    pub config: CsfqConfig,
}

impl Csfq {
    /// A CSFQ discipline with the given configuration.
    pub fn new(config: CsfqConfig) -> Self {
        Csfq { config }
    }
}

impl Discipline for Csfq {
    fn name(&self) -> &'static str {
        "csfq"
    }

    fn core_logic(&self, seed: u64) -> Box<dyn RouterLogic> {
        Box::new(CsfqCore::new(seed, self.config.clone()))
    }

    fn edge_logic(&self, seed: u64, _flow: &ScenarioFlow) -> Box<dyn RouterLogic> {
        Box::new(CsfqEdge::new(seed, self.config.clone()))
    }
}

/// Greedy open-loop sources over RED cores: random early detection
/// manages queues but knows nothing of weights, so goodput follows
/// offered load — the §5 argument for why AQM alone cannot provide
/// weighted fairness.
#[derive(Debug, Clone)]
pub struct Red {
    /// RED queue-management parameters.
    pub config: RedConfig,
    /// Offered rate of every source, pkt/s.
    pub source_rate: f64,
}

impl Default for Red {
    fn default() -> Self {
        Red {
            config: RedConfig::default(),
            source_rate: GREEDY_SOURCE_PPS,
        }
    }
}

impl Discipline for Red {
    fn name(&self) -> &'static str {
        "red"
    }

    fn core_logic(&self, seed: u64) -> Box<dyn RouterLogic> {
        Box::new(RedCore::new(seed, self.config.clone()))
    }

    fn edge_logic(&self, _seed: u64, _flow: &ScenarioFlow) -> Box<dyn RouterLogic> {
        Box::new(GreedySource::new(self.source_rate))
    }

    fn reference_weight(&self, _flow: &ScenarioFlow) -> f64 {
        1.0
    }

    fn offered_rate(&self, _flow: &ScenarioFlow) -> Option<f64> {
        Some(self.source_rate)
    }
}

/// Greedy open-loop sources over flow-aware FRED cores: per-flow
/// accounting protects low-rate flows but the shares are unweighted.
#[derive(Debug, Clone)]
pub struct Fred {
    /// FRED queue-management parameters.
    pub config: FredConfig,
    /// Offered rate of every source, pkt/s.
    pub source_rate: f64,
}

impl Default for Fred {
    fn default() -> Self {
        Fred {
            config: FredConfig::default(),
            source_rate: GREEDY_SOURCE_PPS,
        }
    }
}

impl Discipline for Fred {
    fn name(&self) -> &'static str {
        "fred"
    }

    fn core_logic(&self, seed: u64) -> Box<dyn RouterLogic> {
        Box::new(FredCore::new(seed, self.config.clone()))
    }

    fn edge_logic(&self, _seed: u64, _flow: &ScenarioFlow) -> Box<dyn RouterLogic> {
        Box::new(GreedySource::new(self.source_rate))
    }

    fn reference_weight(&self, _flow: &ScenarioFlow) -> f64 {
        1.0
    }

    fn offered_rate(&self, _flow: &ScenarioFlow) -> Option<f64> {
        Some(self.source_rate)
    }
}

/// Cooperative weight-proportional sources over plain FIFO drop-tail
/// cores: the no-AQM, no-feedback reference point. Fair only because the
/// sources police themselves.
#[derive(Debug, Clone)]
pub struct Fifo {
    /// Per-unit-weight source rate, pkt/s.
    pub pps_per_weight: f64,
}

impl Default for Fifo {
    fn default() -> Self {
        Fifo {
            pps_per_weight: FIFO_PPS_PER_WEIGHT,
        }
    }
}

impl Discipline for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn core_logic(&self, _seed: u64) -> Box<dyn RouterLogic> {
        Box::<FifoCore>::new(ForwardLogic)
    }

    fn edge_logic(&self, _seed: u64, flow: &ScenarioFlow) -> Box<dyn RouterLogic> {
        Box::new(GreedySource::new(self.pps_per_weight * flow.weight as f64))
    }

    fn offered_rate(&self, flow: &ScenarioFlow) -> Option<f64> {
        Some(self.pps_per_weight * flow.weight as f64)
    }
}

/// Greedy open-loop sources over plain FIFO drop-tail cores: the
/// worst-case reference — whoever pushes hardest wins.
#[derive(Debug, Clone)]
pub struct Greedy {
    /// Offered rate of every source, pkt/s.
    pub source_rate: f64,
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy {
            source_rate: GREEDY_SOURCE_PPS,
        }
    }
}

impl Discipline for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn core_logic(&self, _seed: u64) -> Box<dyn RouterLogic> {
        Box::<FifoCore>::new(ForwardLogic)
    }

    fn edge_logic(&self, _seed: u64, _flow: &ScenarioFlow) -> Box<dyn RouterLogic> {
        Box::new(GreedySource::new(self.source_rate))
    }

    fn reference_weight(&self, _flow: &ScenarioFlow) -> f64 {
        1.0
    }

    fn offered_rate(&self, _flow: &ScenarioFlow) -> Option<f64> {
        Some(self.source_rate)
    }
}

/// Every in-tree discipline under its default configuration, in the
/// order the §4.4 comparison tables print them.
pub fn default_registry() -> Vec<Box<dyn Discipline>> {
    vec![
        Box::new(Corelite::default()),
        Box::new(Csfq::default()),
        Box::new(Red::default()),
        Box::new(Fred::default()),
        Box::new(Fifo::default()),
        Box::new(Greedy::default()),
    ]
}

/// The registered discipline names, in registry order.
pub fn names() -> Vec<&'static str> {
    default_registry().iter().map(|d| d.name()).collect()
}

/// Looks up a discipline by its registered name (default configuration).
pub fn by_name(name: &str) -> Option<Box<dyn Discipline>> {
    default_registry().into_iter().find(|d| d.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Route;
    use sim_core::time::SimTime;

    fn flow(weight: u32) -> ScenarioFlow {
        ScenarioFlow {
            transport: Default::default(),
            path: Route::new(0, 1).into(),
            weight,
            min_rate: 0.0,
            activations: vec![(SimTime::ZERO, None)],
        }
    }

    #[test]
    fn registry_has_six_uniquely_named_disciplines() {
        let names = names();
        assert_eq!(
            names,
            vec!["corelite", "csfq", "red", "fred", "fifo", "greedy"]
        );
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn by_name_round_trips_and_rejects_unknowns() {
        for name in names() {
            assert_eq!(by_name(name).expect("registered").name(), name);
        }
        assert!(by_name("wfq").is_none());
    }

    #[test]
    fn weight_oblivious_disciplines_compete_as_equals() {
        let f = flow(3);
        for name in ["red", "fred", "greedy"] {
            let d = by_name(name).unwrap();
            assert_eq!(d.reference_weight(&f), 1.0, "{name}");
            assert_eq!(d.offered_rate(&f), Some(GREEDY_SOURCE_PPS), "{name}");
        }
    }

    #[test]
    fn weight_aware_disciplines_keep_the_flow_weight() {
        let f = flow(3);
        for name in ["corelite", "csfq", "fifo"] {
            let d = by_name(name).unwrap();
            assert_eq!(d.reference_weight(&f), 3.0, "{name}");
        }
        assert_eq!(by_name("fifo").unwrap().offered_rate(&f), Some(90.0));
        assert_eq!(by_name("corelite").unwrap().offered_rate(&f), None);
    }
}
