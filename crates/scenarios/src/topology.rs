//! Core topologies, with the paper's Figure-2 chain as the default.
//!
//! The paper evaluates on a chain of four core routers `C1–C2–C3–C4`
//! joined by three 4 Mbps / 40 ms links (the congested links). Every flow
//! enters through its own ingress edge router and leaves through its own
//! egress edge router, each attached by a 4 Mbps / 40 ms access link —
//! matching the paper's per-flow `S_i`/`R_i` routers and its round-trip
//! times (240 ms for one-hop flows, 320 ms for two, 400 ms for three).
//!
//! [`TopologySpec`] generalizes the core network beyond that chain:
//! arbitrary directed core-to-core links, with constructors for chains of
//! any length, the parking-lot configuration, and a small leaf–spine
//! fat-tree. Flows traverse a [`CorePath`] — an explicit ordered list of
//! core routers — of which the paper's [`Route`] is the contiguous-chain
//! special case.

use netsim::link::LinkSpec;
use sim_core::time::SimDuration;

/// Which stretch of the core chain a flow traverses.
///
/// `first_core` and `last_core` index the chain `C1..C4` as `0..4`; the
/// flow crosses the congested links `first_core..last_core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index of the core router where the flow enters (0 = C1).
    pub first_core: usize,
    /// Index of the core router where the flow exits (must be greater
    /// than `first_core`).
    pub last_core: usize,
}

impl Route {
    /// Number of core routers in the paper's chain.
    pub const CORE_COUNT: usize = 4;

    /// Creates a route entering at core `first_core` and exiting after
    /// core `last_core`.
    ///
    /// # Panics
    ///
    /// Panics unless `first_core < last_core < 4`.
    pub fn new(first_core: usize, last_core: usize) -> Self {
        assert!(
            first_core < last_core && last_core < Self::CORE_COUNT,
            "invalid route: cores {first_core}..{last_core}"
        );
        Route {
            first_core,
            last_core,
        }
    }

    /// Number of congested (core-to-core) links the route crosses.
    pub fn congested_links(&self) -> usize {
        self.last_core - self.first_core
    }

    /// The route of paper flow `i` (1-based) in the 20-flow scenarios
    /// (§4.1/§4.3): flows 1–5 cross C1–C2; 6–8 cross C1–C3; 9–10 cross
    /// C1–C4; 11–12 cross C2–C3; 13–15 cross C2–C4; 16–20 cross C3–C4.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ 20`.
    pub fn of_paper_flow(i: usize) -> Route {
        match i {
            1..=5 => Route::new(0, 1),
            6..=8 => Route::new(0, 2),
            9..=10 => Route::new(0, 3),
            11..=12 => Route::new(1, 2),
            13..=15 => Route::new(1, 3),
            16..=20 => Route::new(2, 3),
            _ => panic!("paper flows are numbered 1..=20, got {i}"),
        }
    }

    /// The rate weight of paper flow `i` (1-based): flows 5 and 15 have
    /// weight 3; flows 1, 11 and 16 weight 1; all others weight 2 (§4.1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ 20`.
    pub fn paper_weight(i: usize) -> u32 {
        match i {
            5 | 15 => 3,
            1 | 11 | 16 => 1,
            2..=20 => 2,
            _ => panic!("paper flows are numbered 1..=20, got {i}"),
        }
    }
}

/// An explicit, ordered list of core routers a flow traverses.
///
/// Consecutive entries must be joined by a link of the scenario's
/// [`TopologySpec`]; the flow crosses every such core-to-core link. The
/// paper's contiguous-chain [`Route`] converts into a `CorePath` via
/// `From`, so chain scenarios keep reading `Route::new(0, 2).into()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorePath(pub Vec<usize>);

impl CorePath {
    /// Creates a path through the given core routers, in traversal order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two cores are given (a flow must cross at
    /// least one core-to-core link to be schedulable).
    pub fn new(cores: Vec<usize>) -> Self {
        assert!(
            cores.len() >= 2,
            "a core path needs at least two routers, got {cores:?}"
        );
        CorePath(cores)
    }

    /// The core router where the flow enters the core network.
    pub fn first(&self) -> usize {
        self.0[0]
    }

    /// The core router where the flow leaves the core network.
    pub fn last(&self) -> usize {
        *self.0.last().expect("paths are non-empty")
    }

    /// Number of core-to-core links crossed.
    pub fn congested_links(&self) -> usize {
        self.0.len() - 1
    }

    /// The indices (into `topology.links`) of the links this path
    /// crosses, in order.
    ///
    /// # Panics
    ///
    /// Panics if a hop of the path is not a link of `topology`.
    pub fn link_indices(&self, topology: &TopologySpec) -> Vec<usize> {
        self.0
            .windows(2)
            .map(|hop| {
                topology.link_index(hop[0], hop[1]).unwrap_or_else(|| {
                    panic!(
                        "path hop {}->{} is not a link of topology `{}`",
                        hop[0], hop[1], topology.name
                    )
                })
            })
            .collect()
    }
}

impl From<Route> for CorePath {
    fn from(route: Route) -> Self {
        CorePath::new((route.first_core..=route.last_core).collect())
    }
}

/// The shape of the core network: how many core routers there are and
/// which directed core-to-core links join them.
///
/// Edge routers are not part of the spec — the runner attaches one
/// ingress and one egress edge per flow, exactly as in the paper's
/// Figure 2 — so the spec only describes the shared, congestible part of
/// the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Display name, used in scenario banners and error messages.
    pub name: &'static str,
    /// Number of core routers, indexed `0..core_count`.
    pub core_count: usize,
    /// Directed core-to-core links as `(src, dst)` core indices.
    pub links: Vec<(usize, usize)>,
}

impl TopologySpec {
    /// The paper's Figure-2 chain: four cores, three directed links.
    pub fn paper_chain() -> Self {
        TopologySpec {
            name: "paper_chain",
            ..Self::chain(Route::CORE_COUNT)
        }
    }

    /// A left-to-right chain of `n` cores joined by `n - 1` links.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2`.
    pub fn chain(n: usize) -> Self {
        assert!(n >= 2, "a chain needs at least two cores, got {n}");
        TopologySpec {
            name: "chain",
            core_count: n,
            links: (0..n - 1).map(|i| (i, i + 1)).collect(),
        }
    }

    /// The parking-lot configuration: a chain of `hops` congested links
    /// (`hops + 1` cores). The characteristic parking-lot *workload* —
    /// one long flow crossing every link plus a one-hop cross flow per
    /// link — is built by [`crate::runner::Scenario::parking_lot`].
    ///
    /// # Panics
    ///
    /// Panics unless `hops >= 1`.
    pub fn parking_lot(hops: usize) -> Self {
        assert!(hops >= 1, "a parking lot needs at least one hop");
        TopologySpec {
            name: "parking_lot",
            ..Self::chain(hops + 1)
        }
    }

    /// A small two-tier leaf–spine fat-tree: four leaf cores (`0..4`)
    /// each joined to two spine cores (`4`, `5`) by a link in each
    /// direction. Paths between leaves are two hops (leaf–spine–leaf) and
    /// the spine chosen determines which links a flow loads — the
    /// genuinely non-chain case for the max-min solver.
    pub fn fat_tree() -> Self {
        TopologySpec {
            name: "fat_tree",
            ..Self::fat_tree_k(Self::FAT_TREE_LEAVES, Self::FAT_TREE_SPINES)
        }
    }

    /// A two-tier leaf–spine fat-tree of arbitrary size: `leaves` leaf
    /// cores (`0..leaves`) each joined to `spines` spine cores
    /// (`leaves..leaves + spines`) by a link in each direction. The k≥8
    /// scaling benchmarks use this to stress wide fan-out; the fixed
    /// [`fat_tree`](Self::fat_tree) is the `4 × 2` instance.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves >= 2` and `spines >= 1`.
    pub fn fat_tree_k(leaves: usize, spines: usize) -> Self {
        assert!(leaves >= 2, "a fat-tree needs at least two leaves");
        assert!(spines >= 1, "a fat-tree needs at least one spine");
        let mut links = Vec::new();
        for leaf in 0..leaves {
            for spine in 0..spines {
                let s = leaves + spine;
                links.push((leaf, s));
                links.push((s, leaf));
            }
        }
        TopologySpec {
            name: "fat_tree_k",
            core_count: leaves + spines,
            links,
        }
    }

    /// Leaf count of [`TopologySpec::fat_tree`].
    pub const FAT_TREE_LEAVES: usize = 4;
    /// Spine count of [`TopologySpec::fat_tree`].
    pub const FAT_TREE_SPINES: usize = 2;

    /// The leaf–spine–leaf path from `src_leaf` to `dst_leaf` through the
    /// given spine (by spine index, `0..FAT_TREE_SPINES`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range leaves, equal leaves, or spine index.
    pub fn fat_tree_path(src_leaf: usize, dst_leaf: usize, spine: usize) -> CorePath {
        assert!(
            src_leaf < Self::FAT_TREE_LEAVES && dst_leaf < Self::FAT_TREE_LEAVES,
            "fat-tree leaves are 0..{}, got {src_leaf}->{dst_leaf}",
            Self::FAT_TREE_LEAVES
        );
        assert!(src_leaf != dst_leaf, "fat-tree path needs distinct leaves");
        assert!(
            spine < Self::FAT_TREE_SPINES,
            "fat-tree spines are 0..{}, got {spine}",
            Self::FAT_TREE_SPINES
        );
        CorePath::new(vec![src_leaf, Self::FAT_TREE_LEAVES + spine, dst_leaf])
    }

    /// The leaf–spine–leaf path from `src_leaf` to `dst_leaf` through the
    /// given spine on a [`fat_tree_k`](Self::fat_tree_k) with `leaves`
    /// leaves and `spines` spines.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range leaves, equal leaves, or spine index.
    pub fn fat_tree_k_path(
        leaves: usize,
        spines: usize,
        src_leaf: usize,
        dst_leaf: usize,
        spine: usize,
    ) -> CorePath {
        assert!(
            src_leaf < leaves && dst_leaf < leaves,
            "fat-tree leaves are 0..{leaves}, got {src_leaf}->{dst_leaf}"
        );
        assert!(src_leaf != dst_leaf, "fat-tree path needs distinct leaves");
        assert!(
            spine < spines,
            "fat-tree spines are 0..{spines}, got {spine}"
        );
        CorePath::new(vec![src_leaf, leaves + spine, dst_leaf])
    }

    /// Number of core-to-core links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The index of the directed link `src -> dst`, if it exists.
    pub fn link_index(&self, src: usize, dst: usize) -> Option<usize> {
        self.links.iter().position(|&(a, b)| a == src && b == dst)
    }

    /// Whether the topology is the left-to-right chain shape (every link
    /// is `i -> i+1`), which is what the scenario DSL's `route=A-B`
    /// notation can address.
    pub fn is_chain(&self) -> bool {
        self.links.len() == self.core_count - 1
            && self
                .links
                .iter()
                .enumerate()
                .all(|(i, &(a, b))| a == i && b == i + 1)
    }
}

/// Link parameters shared by every link in the paper topology: 4 Mbps,
/// 40 ms propagation, 40-packet tail-drop queue.
pub fn paper_link() -> LinkSpec {
    LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
}

/// The paper's link capacity in packets per second at 1 KB packets.
pub const LINK_CAPACITY_PPS: f64 = 500.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_routes_cross_expected_links() {
        assert_eq!(Route::of_paper_flow(1).congested_links(), 1);
        assert_eq!(Route::of_paper_flow(7).congested_links(), 2);
        assert_eq!(Route::of_paper_flow(9).congested_links(), 3);
        assert_eq!(Route::of_paper_flow(11), Route::new(1, 2));
        assert_eq!(Route::of_paper_flow(14), Route::new(1, 3));
        assert_eq!(Route::of_paper_flow(20), Route::new(2, 3));
    }

    #[test]
    fn paper_weights_sum_to_20_per_link() {
        // Every congested link carries total weight 20 (the basis of the
        // paper's 25 pkt/s-per-unit-weight expectation).
        for link in 0..3 {
            let total: u32 = (1..=20)
                .filter(|&i| {
                    let r = Route::of_paper_flow(i);
                    r.first_core <= link && link < r.last_core
                })
                .map(Route::paper_weight)
                .sum();
            assert_eq!(total, 20, "link C{}-C{}", link + 1, link + 2);
        }
    }

    #[test]
    fn paper_link_matches_numbers() {
        let spec = paper_link();
        assert!((spec.service_rate_pps(1000) - LINK_CAPACITY_PPS).abs() < 1e-9);
        assert_eq!(spec.queue_capacity, 40);
    }

    #[test]
    #[should_panic(expected = "invalid route")]
    fn backwards_route_rejected() {
        Route::new(2, 1);
    }

    #[test]
    #[should_panic(expected = "numbered")]
    fn flow_zero_rejected() {
        Route::of_paper_flow(0);
    }

    #[test]
    fn route_converts_to_contiguous_path() {
        let path: CorePath = Route::new(1, 3).into();
        assert_eq!(path.0, vec![1, 2, 3]);
        assert_eq!(path.first(), 1);
        assert_eq!(path.last(), 3);
        assert_eq!(path.congested_links(), 2);
    }

    #[test]
    fn chains_are_chains() {
        assert!(TopologySpec::paper_chain().is_chain());
        assert!(TopologySpec::chain(7).is_chain());
        assert!(TopologySpec::parking_lot(3).is_chain());
        assert!(!TopologySpec::fat_tree().is_chain());
    }

    #[test]
    fn paper_chain_matches_route_geometry() {
        let topo = TopologySpec::paper_chain();
        assert_eq!(topo.core_count, Route::CORE_COUNT);
        assert_eq!(topo.link_count(), Route::CORE_COUNT - 1);
        let path: CorePath = Route::new(0, 3).into();
        assert_eq!(path.link_indices(&topo), vec![0, 1, 2]);
    }

    #[test]
    fn fat_tree_paths_resolve_to_links() {
        let topo = TopologySpec::fat_tree();
        assert_eq!(topo.core_count, 6);
        assert_eq!(topo.link_count(), 16);
        let via0 = TopologySpec::fat_tree_path(0, 3, 0);
        let via1 = TopologySpec::fat_tree_path(0, 3, 1);
        assert_eq!(via0.0, vec![0, 4, 3]);
        assert_eq!(via1.0, vec![0, 5, 3]);
        // Distinct spines load disjoint link sets.
        let l0 = via0.link_indices(&topo);
        let l1 = via1.link_indices(&topo);
        assert!(l0.iter().all(|i| !l1.contains(i)), "{l0:?} vs {l1:?}");
    }

    #[test]
    #[should_panic(expected = "not a link")]
    fn off_topology_path_rejected() {
        let path = CorePath::new(vec![0, 2]);
        path.link_indices(&TopologySpec::paper_chain());
    }
}
