//! The paper's Figure-2 topology.
//!
//! A chain of four core routers `C1–C2–C3–C4` joined by three 4 Mbps /
//! 40 ms links (the congested links). Every flow enters through its own
//! ingress edge router and leaves through its own egress edge router, each
//! attached by a 4 Mbps / 40 ms access link — matching the paper's
//! per-flow `S_i`/`R_i` routers and its round-trip times (240 ms for
//! one-hop flows, 320 ms for two, 400 ms for three).

use netsim::link::LinkSpec;
use sim_core::time::SimDuration;

/// Which stretch of the core chain a flow traverses.
///
/// `first_core` and `last_core` index the chain `C1..C4` as `0..4`; the
/// flow crosses the congested links `first_core..last_core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index of the core router where the flow enters (0 = C1).
    pub first_core: usize,
    /// Index of the core router where the flow exits (must be greater
    /// than `first_core`).
    pub last_core: usize,
}

impl Route {
    /// Number of core routers in the paper's chain.
    pub const CORE_COUNT: usize = 4;

    /// Creates a route entering at core `first_core` and exiting after
    /// core `last_core`.
    ///
    /// # Panics
    ///
    /// Panics unless `first_core < last_core < 4`.
    pub fn new(first_core: usize, last_core: usize) -> Self {
        assert!(
            first_core < last_core && last_core < Self::CORE_COUNT,
            "invalid route: cores {first_core}..{last_core}"
        );
        Route {
            first_core,
            last_core,
        }
    }

    /// Number of congested (core-to-core) links the route crosses.
    pub fn congested_links(&self) -> usize {
        self.last_core - self.first_core
    }

    /// The route of paper flow `i` (1-based) in the 20-flow scenarios
    /// (§4.1/§4.3): flows 1–5 cross C1–C2; 6–8 cross C1–C3; 9–10 cross
    /// C1–C4; 11–12 cross C2–C3; 13–15 cross C2–C4; 16–20 cross C3–C4.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ 20`.
    pub fn of_paper_flow(i: usize) -> Route {
        match i {
            1..=5 => Route::new(0, 1),
            6..=8 => Route::new(0, 2),
            9..=10 => Route::new(0, 3),
            11..=12 => Route::new(1, 2),
            13..=15 => Route::new(1, 3),
            16..=20 => Route::new(2, 3),
            _ => panic!("paper flows are numbered 1..=20, got {i}"),
        }
    }

    /// The rate weight of paper flow `i` (1-based): flows 5 and 15 have
    /// weight 3; flows 1, 11 and 16 weight 1; all others weight 2 (§4.1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ 20`.
    pub fn paper_weight(i: usize) -> u32 {
        match i {
            5 | 15 => 3,
            1 | 11 | 16 => 1,
            2..=20 => 2,
            _ => panic!("paper flows are numbered 1..=20, got {i}"),
        }
    }
}

/// Link parameters shared by every link in the paper topology: 4 Mbps,
/// 40 ms propagation, 40-packet tail-drop queue.
pub fn paper_link() -> LinkSpec {
    LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
}

/// The paper's link capacity in packets per second at 1 KB packets.
pub const LINK_CAPACITY_PPS: f64 = 500.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_routes_cross_expected_links() {
        assert_eq!(Route::of_paper_flow(1).congested_links(), 1);
        assert_eq!(Route::of_paper_flow(7).congested_links(), 2);
        assert_eq!(Route::of_paper_flow(9).congested_links(), 3);
        assert_eq!(Route::of_paper_flow(11), Route::new(1, 2));
        assert_eq!(Route::of_paper_flow(14), Route::new(1, 3));
        assert_eq!(Route::of_paper_flow(20), Route::new(2, 3));
    }

    #[test]
    fn paper_weights_sum_to_20_per_link() {
        // Every congested link carries total weight 20 (the basis of the
        // paper's 25 pkt/s-per-unit-weight expectation).
        for link in 0..3 {
            let total: u32 = (1..=20)
                .filter(|&i| {
                    let r = Route::of_paper_flow(i);
                    r.first_core <= link && link < r.last_core
                })
                .map(Route::paper_weight)
                .sum();
            assert_eq!(total, 20, "link C{}-C{}", link + 1, link + 2);
        }
    }

    #[test]
    fn paper_link_matches_numbers() {
        let spec = paper_link();
        assert!((spec.service_rate_pps(1000) - LINK_CAPACITY_PPS).abs() < 1e-9);
        assert_eq!(spec.queue_capacity, 40);
    }

    #[test]
    #[should_panic(expected = "invalid route")]
    fn backwards_route_rejected() {
        Route::new(2, 1);
    }

    #[test]
    #[should_panic(expected = "numbered")]
    fn flow_zero_rejected() {
        Route::of_paper_flow(0);
    }
}
