//! A small self-contained SVG line plotter for regenerating the paper's
//! figures as images (no external plotting dependency).
//!
//! Produces plots in the visual style of the paper's evaluation section:
//! time on the x-axis, allotted rate (or cumulative packets) on the
//! y-axis, one polyline per flow. Output is deterministic, so figure SVGs
//! can be diffed across runs.

use std::fmt::Write as _;

use sim_core::stats::TimeSeries;

/// A categorical 20-colour palette (repeats beyond 20 series).
const PALETTE: [&str; 20] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf", "#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5", "#c49c94",
    "#f7b6d2", "#c7c7c7", "#dbdb8d", "#9edae5",
];

/// Plot geometry and labels.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Plot title (e.g. `"Figure 5: Corelite instantaneous rate"`).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for PlotSpec {
    fn default() -> Self {
        PlotSpec {
            title: String::new(),
            x_label: "time in seconds".to_owned(),
            y_label: "alloted_rate".to_owned(),
            width: 900,
            height: 540,
        }
    }
}

/// Renders one named series per flow into an SVG document.
///
/// Sample-and-hold series are drawn as step-free polylines (matching the
/// paper's gnuplot style). Returns the SVG text.
///
/// # Panics
///
/// Panics if `series` is empty or every series is empty.
///
/// # Example
///
/// ```
/// use scenarios::plot::{render_lines, PlotSpec};
/// use sim_core::stats::TimeSeries;
/// use sim_core::time::SimTime;
///
/// let s: TimeSeries = [(SimTime::ZERO, 0.0), (SimTime::from_secs(10), 50.0)]
///     .into_iter()
///     .collect();
/// let svg = render_lines(&PlotSpec::default(), &[("flow1".into(), &s)]);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
pub fn render_lines(spec: &PlotSpec, series: &[(String, &TimeSeries)]) -> String {
    assert!(!series.is_empty(), "nothing to plot");
    let (mut x_max, mut y_max) = (0.0f64, 0.0f64);
    let mut any = false;
    for (_, s) in series {
        for (t, v) in s.iter() {
            any = true;
            x_max = x_max.max(t.as_secs_f64());
            y_max = y_max.max(v);
        }
    }
    assert!(any, "all series are empty");
    let x_max = nice_ceil(x_max.max(1e-9));
    let y_max = nice_ceil(y_max.max(1e-9) * 1.05);

    // Layout: margins around the plot area, legend to the right.
    let (w, h) = (spec.width as f64, spec.height as f64);
    let legend_w = 110.0;
    let (left, right, top, bottom) = (70.0, 20.0 + legend_w, 40.0, 55.0);
    let plot_w = w - left - right;
    let plot_h = h - top - bottom;
    let sx = move |t: f64| left + t / x_max * plot_w;
    let sy = move |v: f64| top + (1.0 - v / y_max) * plot_h;

    let mut out = String::with_capacity(16 * 1024);
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="22" text-anchor="middle" font-size="15">{}</text>"#,
        w / 2.0,
        escape(&spec.title)
    );

    // Axes, grid and ticks.
    let _ = write!(
        out,
        r#"<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" fill="none" stroke="black"/>"#
    );
    for i in 0..=5 {
        let xt = x_max * i as f64 / 5.0;
        let yt = y_max * i as f64 / 5.0;
        let px = sx(xt);
        let py = sy(yt);
        let _ = write!(
            out,
            r##"<line x1="{px:.1}" y1="{top}" x2="{px:.1}" y2="{:.1}" stroke="#ddd"/><text x="{px:.1}" y="{:.1}" text-anchor="middle">{}</text>"##,
            top + plot_h,
            top + plot_h + 16.0,
            fmt_tick(xt)
        );
        let _ = write!(
            out,
            r##"<line x1="{left}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"##,
            left + plot_w,
            left - 6.0,
            py + 4.0,
            fmt_tick(yt)
        );
    }
    let _ = write!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        left + plot_w / 2.0,
        h - 12.0,
        escape(&spec.x_label)
    );
    let _ = write!(
        out,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        top + plot_h / 2.0,
        top + plot_h / 2.0,
        escape(&spec.y_label)
    );

    // Series polylines + legend.
    for (i, (name, s)) in series.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        let color = PALETTE[i % PALETTE.len()];
        let mut points = String::new();
        for (t, v) in s.iter() {
            let _ = write!(
                points,
                "{:.1},{:.1} ",
                sx(t.as_secs_f64()),
                sy(v.min(y_max))
            );
        }
        let _ = write!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.2"/>"#,
            points.trim_end()
        );
        let ly = top + 8.0 + 14.0 * i as f64;
        let lx = w - legend_w;
        let _ = write!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}">{}</text>"#,
            lx + 18.0,
            lx + 24.0,
            ly + 4.0,
            escape(name)
        );
    }
    out.push_str("</svg>");
    out
}

/// Rounds up to a "nice" axis bound (1/2/5 × 10^k).
fn nice_ceil(v: f64) -> f64 {
    let mag = 10f64.powf(v.log10().floor());
    for m in [1.0, 2.0, 2.5, 5.0, 10.0] {
        if m * mag >= v {
            return m * mag;
        }
    }
    10.0 * mag
}

fn fmt_tick(v: f64) -> String {
    // Tick values come from `i * step`, so integers are exact in
    // practice; compare with a slack anyway so accumulated FP error in a
    // future step computation cannot flip a label to "1234.0" form.
    if v.abs() < 1e-12 {
        "0".to_owned()
    } else if v.fract().abs() < 1e-9 && v < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;

    fn series(points: &[(f64, f64)]) -> TimeSeries {
        points
            .iter()
            .map(|&(t, v)| (SimTime::from_secs_f64(t), v))
            .collect()
    }

    #[test]
    fn renders_polylines_and_legend() {
        let a = series(&[(0.0, 0.0), (10.0, 40.0), (20.0, 35.0)]);
        let b = series(&[(0.0, 0.0), (20.0, 80.0)]);
        let svg = render_lines(
            &PlotSpec {
                title: "test figure".into(),
                ..PlotSpec::default()
            },
            &[("flow1".into(), &a), ("flow2".into(), &b)],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("test figure"));
        assert!(svg.contains("flow1") && svg.contains("flow2"));
        // Distinct colors for distinct series.
        assert!(svg.contains(PALETTE[0]) && svg.contains(PALETTE[1]));
    }

    #[test]
    fn output_is_deterministic() {
        let a = series(&[(0.0, 1.0), (5.0, 2.0)]);
        let spec = PlotSpec::default();
        let one = render_lines(&spec, &[("f".into(), &a)]);
        let two = render_lines(&spec, &[("f".into(), &a)]);
        assert_eq!(one, two);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let a = series(&[(0.0, 1.0)]);
        let svg = render_lines(
            &PlotSpec {
                title: "a<b&c".into(),
                ..PlotSpec::default()
            },
            &[("x".into(), &a)],
        );
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn nice_ceil_picks_round_bounds() {
        assert_eq!(nice_ceil(87.0), 100.0);
        assert_eq!(nice_ceil(500.0), 500.0);
        assert_eq!(nice_ceil(101.0), 200.0);
        assert_eq!(nice_ceil(0.03), 0.05);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_input_panics() {
        render_lines(&PlotSpec::default(), &[]);
    }

    #[test]
    #[should_panic(expected = "all series are empty")]
    fn all_empty_series_panics() {
        let s = TimeSeries::new();
        render_lines(&PlotSpec::default(), &[("x".into(), &s)]);
    }
}
