//! Builds and runs an experiment on the paper topology under a chosen
//! discipline.

use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge};
use csfq::{CsfqConfig, CsfqCore, CsfqEdge};
use fairness::maxmin::MaxMinProblem;
use netsim::flow::FlowSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::{FlowId, SimReport};
use sim_core::stats::TimeSeries;
use sim_core::time::SimTime;

use crate::topology::{paper_link, Route, LINK_CAPACITY_PPS};

/// The rate-management discipline under test.
#[derive(Debug, Clone)]
pub enum Discipline {
    /// Corelite edges and cores (the paper's contribution).
    Corelite(CoreliteConfig),
    /// Weighted CSFQ edges and cores (the baseline).
    Csfq(CsfqConfig),
}

impl Discipline {
    /// Short lowercase name for file names and table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Corelite(_) => "corelite",
            Discipline::Csfq(_) => "csfq",
        }
    }
}

/// One flow of a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioFlow {
    /// Where the flow enters and exits the core chain.
    pub route: Route,
    /// The flow's rate weight.
    pub weight: u32,
    /// Minimum rate contract in packets per second (0 = best effort;
    /// honoured by Corelite edges, ignored by the CSFQ baseline, which
    /// has no contract mechanism).
    pub min_rate: f64,
    /// Activation periods `(start, stop)`; `None` = until the end.
    pub activations: Vec<(SimTime, Option<SimTime>)>,
}

impl ScenarioFlow {
    /// A best-effort flow over `route` with the given weight, active from
    /// `start` for the rest of the run.
    pub fn best_effort(route: Route, weight: u32, start: SimTime) -> Self {
        ScenarioFlow {
            route,
            weight,
            min_rate: 0.0,
            activations: vec![(start, None)],
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name used in output files and tables.
    pub name: &'static str,
    /// The flows, in paper order (flow 1 first).
    pub flows: Vec<ScenarioFlow>,
    /// Simulated duration.
    pub horizon: SimTime,
    /// Experiment seed.
    pub seed: u64,
}

impl Scenario {
    /// Runs the scenario under `discipline` and collects the results,
    /// using the paper's 4 Mbps / 40 ms / 40-packet links.
    pub fn run(&self, discipline: &Discipline) -> ExperimentResult {
        self.run_with_link(discipline, paper_link())
    }

    /// Runs the scenario with every link using `link` instead of the
    /// paper's parameters — the knob behind the latency/capacity
    /// sensitivity ablations (§4.4 mentions "channels with large
    /// latencies").
    pub fn run_with_link(
        &self,
        discipline: &Discipline,
        link: netsim::link::LinkSpec,
    ) -> ExperimentResult {
        let mut b = TopologyBuilder::new(self.seed);
        // Core chain C1..C4 with the three congested links.
        let cores: Vec<_> = (0..Route::CORE_COUNT)
            .map(|i| {
                let name = format!("C{}", i + 1);
                match discipline {
                    Discipline::Corelite(cfg) => {
                        let cfg = cfg.clone();
                        b.node(&name, move |s| Box::new(CoreliteCore::new(s, cfg)))
                    }
                    Discipline::Csfq(cfg) => {
                        let cfg = cfg.clone();
                        b.node(&name, move |s| Box::new(CsfqCore::new(s, cfg)))
                    }
                }
            })
            .collect();
        for w in cores.windows(2) {
            b.link(w[0], w[1], link);
        }
        // Per-flow ingress and egress edges on 40 ms access links.
        for (i, f) in self.flows.iter().enumerate() {
            let ingress_name = format!("E{}", i + 1);
            let ingress = match discipline {
                Discipline::Corelite(cfg) => {
                    let cfg = cfg.clone();
                    b.node(&ingress_name, move |s| Box::new(CoreliteEdge::new(s, cfg)))
                }
                Discipline::Csfq(cfg) => {
                    let cfg = cfg.clone();
                    b.node(&ingress_name, move |s| Box::new(CsfqEdge::new(s, cfg)))
                }
            };
            let egress = b.node(&format!("X{}", i + 1), |_| Box::new(ForwardLogic));
            b.link(ingress, cores[f.route.first_core], link);
            b.link(cores[f.route.last_core], egress, link);
            let mut path = vec![ingress];
            path.extend(&cores[f.route.first_core..=f.route.last_core]);
            path.push(egress);
            let mut spec = FlowSpec::new(path, f.weight).min_rate(f.min_rate);
            for &(start, stop) in &f.activations {
                spec = spec.active(start, stop);
            }
            b.flow(spec);
        }
        let mut net = b.build();
        net.run_until(self.horizon);
        ExperimentResult {
            scenario: self.clone(),
            discipline_name: discipline.name(),
            report: net.into_report(self.horizon),
        }
    }

    /// Returns the indices (0-based) of flows active at time `t`.
    pub fn active_at(&self, t: SimTime) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.activations
                    .iter()
                    .any(|&(start, stop)| t >= start && stop.map_or(true, |s| t < s))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Computes the analytic weighted max-min fair allocation over the
    /// flows active at time `t`. Returns one entry per flow (0-based
    /// index); inactive flows get 0.
    pub fn expected_rates_at(&self, t: SimTime) -> Vec<f64> {
        let active = self.active_at(t);
        let mut problem = MaxMinProblem::new();
        let links: Vec<_> = (0..Route::CORE_COUNT - 1)
            .map(|_| problem.link(LINK_CAPACITY_PPS))
            .collect();
        let mut refs = Vec::new();
        for &i in &active {
            let f = &self.flows[i];
            let crossed = links[f.route.first_core..f.route.last_core].to_vec();
            refs.push((i, problem.flow_with_floor(f.weight as f64, f.min_rate, crossed)));
        }
        let alloc = problem.solve();
        let mut out = vec![0.0; self.flows.len()];
        for (i, r) in refs {
            out[i] = alloc.rate(r);
        }
        out
    }
}

/// The outcome of running a [`Scenario`].
#[derive(Debug)]
pub struct ExperimentResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// `"corelite"` or `"csfq"`.
    pub discipline_name: &'static str,
    /// The full simulation report.
    pub report: SimReport,
}

impl ExperimentResult {
    /// The allotted-rate series of flow `i` (0-based), as recorded by its
    /// ingress edge.
    ///
    /// # Panics
    ///
    /// Panics if the flow does not exist or recorded no series.
    pub fn allotted_rate(&self, i: usize) -> &TimeSeries {
        self.report
            .allotted_rate(FlowId::from_index(i))
            .unwrap_or_else(|| panic!("flow {i} has no allotted-rate series"))
    }

    /// Mean allotted rate of flow `i` over `[from, to)`, or 0 if no
    /// samples fall in the window.
    pub fn mean_rate_in(&self, i: usize, from: SimTime, to: SimTime) -> f64 {
        self.allotted_rate(i).mean_in(from, to).unwrap_or(0.0)
    }

    /// Total packets dropped anywhere during the run.
    pub fn total_drops(&self) -> u64 {
        self.report.total_drops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn two_flow_scenario() -> Scenario {
        Scenario {
            name: "test",
            flows: vec![
                ScenarioFlow {
                    route: Route::new(0, 1),
                    weight: 1,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                },
                ScenarioFlow {
                    route: Route::new(0, 1),
                    weight: 2,
                    min_rate: 0.0,
                    activations: vec![(
                        SimTime::from_secs(10),
                        Some(SimTime::from_secs(20)),
                    )],
                },
            ],
            horizon: SimTime::from_secs(30),
            seed: 1,
        }
    }

    #[test]
    fn active_sets_follow_schedule() {
        let s = two_flow_scenario();
        assert_eq!(s.active_at(SimTime::from_secs(5)), vec![0]);
        assert_eq!(s.active_at(SimTime::from_secs(15)), vec![0, 1]);
        assert_eq!(s.active_at(SimTime::from_secs(25)), vec![0]);
    }

    #[test]
    fn expected_rates_track_active_set() {
        let s = two_flow_scenario();
        let solo = s.expected_rates_at(SimTime::from_secs(5));
        assert!((solo[0] - 500.0).abs() < 1e-6);
        assert_eq!(solo[1], 0.0);
        let both = s.expected_rates_at(SimTime::from_secs(15));
        assert!((both[0] - 500.0 / 3.0).abs() < 1e-6);
        assert!((both[1] - 1000.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn corelite_run_produces_series_for_all_flows() {
        let mut s = two_flow_scenario();
        s.horizon = SimTime::from_secs(5);
        let result = s.run(&Discipline::Corelite(
            CoreliteConfig::default().with_epoch(SimDuration::from_millis(100)),
        ));
        assert_eq!(result.discipline_name, "corelite");
        assert!(!result.allotted_rate(0).is_empty());
        // Flow 1 has not started yet within the 5 s horizon; its series
        // may be empty, but the report must still know the flow.
        assert_eq!(result.report.flows.len(), 2);
    }

    #[test]
    fn csfq_run_produces_series_for_started_flows() {
        let mut s = two_flow_scenario();
        s.horizon = SimTime::from_secs(5);
        let result = s.run(&Discipline::Csfq(CsfqConfig::default()));
        assert_eq!(result.discipline_name, "csfq");
        assert!(!result.allotted_rate(0).is_empty());
    }
}
