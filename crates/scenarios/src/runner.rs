//! Builds and runs an experiment on a [`TopologySpec`] under any
//! registered [`Discipline`].

use std::cell::RefCell;
use std::rc::Rc;

use fairness::maxmin::MaxMinProblem;
use netsim::flow::FlowSpec;
use netsim::telemetry::Probe;
use netsim::topology::TopologyBuilder;
use netsim::{FlowId, SimReport, Transport};
use sim_core::stats::TimeSeries;
use sim_core::time::SimTime;

use crate::discipline::Discipline;
use crate::fault::FaultSpec;
use crate::topology::{paper_link, CorePath, TopologySpec, LINK_CAPACITY_PPS};
use netsim::ChurnSpec;
use sim_core::time::SimDuration;

/// One flow of a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioFlow {
    /// The core routers the flow traverses, in order. Chain scenarios
    /// build this from a [`crate::topology::Route`] via `.into()`.
    pub path: CorePath,
    /// The flow's rate weight.
    pub weight: u32,
    /// Minimum rate contract in packets per second (0 = best effort;
    /// honoured by Corelite edges, ignored by the CSFQ baseline, which
    /// has no contract mechanism).
    pub min_rate: f64,
    /// Activation periods `(start, stop)`; `None` = until the end.
    pub activations: Vec<(SimTime, Option<SimTime>)>,
    /// Transport behaviour at the ingress edge: the default open-loop
    /// LIMD rate controller, or a closed-loop go-back-N sender
    /// (ack-clocked, with LIMD or Reno congestion control).
    pub transport: Transport,
}

impl ScenarioFlow {
    /// A best-effort flow over `path` with the given weight, active from
    /// `start` for the rest of the run.
    pub fn best_effort(path: impl Into<CorePath>, weight: u32, start: SimTime) -> Self {
        ScenarioFlow {
            path: path.into(),
            weight,
            min_rate: 0.0,
            activations: vec![(start, None)],
            transport: Transport::default(),
        }
    }

    /// Sets the transport (builder style).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }
}

/// A dynamic flow-churn process at the scenario level: the plain-data
/// mirror of [`netsim::ChurnSpec`], speaking core paths instead of node
/// ids. Each route template gets its own shared ingress/egress edge pair
/// (running the discipline's edge logic, like static flows); arrivals
/// pick a template uniformly at random and occupy a recycled,
/// generation-counted flow-table slot for their Pareto-sized lifetime.
#[derive(Debug, Clone)]
pub struct ScenarioChurn {
    /// Poisson arrival rate, flows per second.
    pub arrival_rate: f64,
    /// Mean flow size in packets (Pareto-distributed).
    pub mean_size_pkts: f64,
    /// Nominal send rate used to convert sizes to lifetimes, pkt/s.
    pub nominal_rate_pps: f64,
    /// Core-path templates arrivals draw from uniformly.
    pub routes: Vec<CorePath>,
    /// Weight classes arrivals draw from uniformly.
    pub weights: Vec<u32>,
    /// Pareto tail index for flow sizes (must exceed 1).
    pub pareto_shape: f64,
    /// Arrival window; `None` = the whole run.
    pub window: Option<(SimTime, SimTime)>,
    /// Drain delay between a flow's stop and slot recycling, seconds.
    pub linger_secs: f64,
    /// Cap on total arrivals (`None` = unlimited within the window).
    pub max_arrivals: Option<u64>,
}

impl ScenarioChurn {
    /// A churn process with the given arrival rate (flows/s), mean flow
    /// size (packets) and nominal send rate (pkt/s); add at least one
    /// route with [`route`](ScenarioChurn::route).
    pub fn new(arrival_rate: f64, mean_size_pkts: f64, nominal_rate_pps: f64) -> Self {
        ScenarioChurn {
            arrival_rate,
            mean_size_pkts,
            nominal_rate_pps,
            routes: Vec::new(),
            weights: vec![1],
            pareto_shape: 1.8,
            window: None,
            linger_secs: 1.0,
            max_arrivals: None,
        }
    }

    /// Adds a route template (builder-style).
    pub fn route(mut self, path: impl Into<CorePath>) -> Self {
        self.routes.push(path.into());
        self
    }

    /// Sets the weight classes (builder-style).
    pub fn weights(mut self, weights: Vec<u32>) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the arrival window (builder-style).
    pub fn window(mut self, start: SimTime, stop: SimTime) -> Self {
        self.window = Some((start, stop));
        self
    }

    /// Caps the total number of arrivals (builder-style).
    pub fn max_arrivals(mut self, n: u64) -> Self {
        self.max_arrivals = Some(n);
        self
    }

    /// Translates into a simulator [`ChurnSpec`] given the resolved
    /// per-route node paths and the scenario horizon (the default
    /// arrival window).
    fn to_spec(&self, node_routes: Vec<Vec<netsim::ids::NodeId>>, horizon: SimTime) -> ChurnSpec {
        let (start, stop) = self.window.unwrap_or((SimTime::ZERO, horizon));
        let mut spec = ChurnSpec::new(
            self.arrival_rate,
            self.mean_size_pkts,
            self.nominal_rate_pps,
        )
        .weights(self.weights.clone())
        .pareto_shape(self.pareto_shape)
        .window(start, stop)
        .linger(SimDuration::from_secs_f64(self.linger_secs));
        if let Some(n) = self.max_arrivals {
            spec = spec.max_arrivals(n);
        }
        for path in node_routes {
            spec = spec.route(path);
        }
        spec
    }
}

/// A complete experiment description: a core topology, the flows
/// crossing it, and a horizon.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name used in output files and tables.
    pub name: &'static str,
    /// The shape of the core network.
    pub topology: TopologySpec,
    /// The flows, in paper order (flow 1 first).
    pub flows: Vec<ScenarioFlow>,
    /// Simulated duration.
    pub horizon: SimTime,
    /// Experiment seed.
    pub seed: u64,
    /// Faults to inject (empty by default — a clean network).
    pub faults: FaultSpec,
    /// Dynamic flow churn (`None` by default — a static workload).
    pub churn: Option<ScenarioChurn>,
    /// Worker threads for the sharded conservative-parallel engine
    /// (see [`netsim::shard`]). `1` (the default) runs the serial
    /// engine; any value produces byte-identical results.
    pub shards: usize,
}

impl Scenario {
    /// A scenario on the paper's Figure-2 chain.
    pub fn paper(
        name: &'static str,
        flows: Vec<ScenarioFlow>,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        Self::on(TopologySpec::paper_chain(), name, flows, horizon, seed)
    }

    /// A scenario on an arbitrary core topology.
    pub fn on(
        topology: TopologySpec,
        name: &'static str,
        flows: Vec<ScenarioFlow>,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        Scenario {
            name,
            topology,
            flows,
            horizon,
            seed,
            faults: FaultSpec::default(),
            churn: None,
            shards: 1,
        }
    }

    /// Replaces the scenario's fault specification (builder-style).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the shard count (builder-style); every `run_*` entry point
    /// then executes on the sharded engine when `shards > 1`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Installs a dynamic flow-churn process (builder-style).
    pub fn with_churn(mut self, churn: ScenarioChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// The classic parking-lot workload on a chain of `hops` congested
    /// links: one long weight-1 flow crossing every link, plus one
    /// one-hop weight-1 cross flow per link. The analytic share of the
    /// long flow is capacity / 2 on every link regardless of `hops` —
    /// the standard stress case for per-link (rather than per-path)
    /// fairness.
    ///
    /// # Panics
    ///
    /// Panics unless `hops >= 1`.
    pub fn parking_lot(hops: usize, horizon: SimTime, seed: u64) -> Self {
        let mut flows = vec![ScenarioFlow::best_effort(
            CorePath::new((0..=hops).collect()),
            1,
            SimTime::ZERO,
        )];
        for hop in 0..hops {
            flows.push(ScenarioFlow::best_effort(
                CorePath::new(vec![hop, hop + 1]),
                1,
                SimTime::ZERO,
            ));
        }
        Self::on(
            TopologySpec::parking_lot(hops),
            "parking_lot",
            flows,
            horizon,
            seed,
        )
    }

    /// A cross-traffic mix on the leaf–spine fat-tree: eight flows
    /// between distinct leaf pairs, spines alternating by flow index,
    /// weights cycling 1, 2, 3 — a genuinely non-chain workload for the
    /// max-min reference and the §4.4 comparison.
    pub fn fat_tree_mix(horizon: SimTime, seed: u64) -> Self {
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
            (1, 3),
            (2, 0),
            (3, 1),
        ];
        let flows = pairs
            .iter()
            .enumerate()
            .map(|(i, &(src, dst))| {
                ScenarioFlow::best_effort(
                    TopologySpec::fat_tree_path(src, dst, i % TopologySpec::FAT_TREE_SPINES),
                    (i % 3 + 1) as u32,
                    SimTime::ZERO,
                )
            })
            .collect();
        Self::on(
            TopologySpec::fat_tree(),
            "fat_tree_mix",
            flows,
            horizon,
            seed,
        )
    }

    /// The cross-traffic mix generalized to a
    /// [`TopologySpec::fat_tree_k`] of arbitrary width: two flows per
    /// leaf (to the next leaf and the one after), spines alternating by
    /// flow index, weights cycling 1, 2, 3. At `leaves = 8, spines = 4`
    /// this is the k≥8 scaling workload the engine benches record in
    /// `BENCH_6.json`.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves >= 3` (two distinct destinations per leaf)
    /// and `spines >= 1`.
    pub fn fat_tree_k_mix(leaves: usize, spines: usize, horizon: SimTime, seed: u64) -> Self {
        assert!(leaves >= 3, "fat_tree_k_mix needs at least three leaves");
        let flows = (0..2 * leaves)
            .map(|i| {
                let src = i % leaves;
                let dst = (src + 1 + i / leaves) % leaves;
                ScenarioFlow::best_effort(
                    TopologySpec::fat_tree_k_path(leaves, spines, src, dst, i % spines),
                    (i % 3 + 1) as u32,
                    SimTime::ZERO,
                )
            })
            .collect();
        Self::on(
            TopologySpec::fat_tree_k(leaves, spines),
            "fat_tree_k_mix",
            flows,
            horizon,
            seed,
        )
    }

    /// The [`fat_tree_k_mix`](Scenario::fat_tree_k_mix) workload at
    /// k = 16 (16 leaves × 8 spines, 32 cross flows) — the scale target
    /// of the sharded engine.
    pub fn fat_tree_k16(horizon: SimTime, seed: u64) -> Self {
        let mut s = Self::fat_tree_k_mix(16, 8, horizon, seed);
        s.name = "fat_tree_k16";
        s
    }

    /// [`fat_tree_k16`](Scenario::fat_tree_k16) plus a 100 000-arrival
    /// churn process: 16 route templates (one per leaf, to the next
    /// leaf via alternating spines), Poisson arrivals at 20 k flows/s
    /// over the first quarter of the horizon, Pareto-sized lifetimes
    /// around 10 packets. The `engine/fat_tree_k16_100k` bench workload
    /// and the sharded-vs-serial identity suite both run this.
    pub fn fat_tree_k16_100k(horizon: SimTime, seed: u64) -> Self {
        const LEAVES: usize = 16;
        const SPINES: usize = 8;
        let mut s = Self::fat_tree_k16(horizon, seed);
        s.name = "fat_tree_k16_100k";
        let mut churn = ScenarioChurn::new(20_000.0, 10.0, 1_000.0)
            .weights(vec![1, 2, 3])
            .window(SimTime::ZERO, SimTime::from_nanos(horizon.as_nanos() / 4))
            .max_arrivals(100_000);
        churn.linger_secs = 0.1;
        for leaf in 0..LEAVES {
            churn = churn.route(TopologySpec::fat_tree_k_path(
                LEAVES,
                SPINES,
                leaf,
                (leaf + 1) % LEAVES,
                leaf % SPINES,
            ));
        }
        s.with_churn(churn)
    }

    /// Runs the scenario under `discipline` and collects the results,
    /// using the paper's 4 Mbps / 40 ms / 40-packet links.
    pub fn run(&self, discipline: &dyn Discipline) -> ExperimentResult {
        self.run_with_link(discipline, paper_link())
    }

    /// Runs the scenario on a specific event-queue backend. Results are
    /// byte-identical across backends (both deliver events in the same
    /// order); the knob exists for differential testing of the engine.
    pub fn run_with_queue(
        &self,
        discipline: &dyn Discipline,
        backend: sim_core::event::QueueBackend,
    ) -> ExperimentResult {
        self.run_configured(
            discipline,
            paper_link(),
            backend,
            netsim::DispatchMode::Train,
            None,
        )
    }

    /// Runs the scenario under a specific transmission-dispatch mode.
    /// [`DispatchMode::Train`](netsim::DispatchMode::Train) (the default
    /// everywhere else) coalesces back-to-back transmissions into the
    /// link's departure train; `PerPacket` re-enacts the one-TxDone-per-
    /// packet schedule. Reports are byte-identical across modes; the
    /// knob exists for the batched-vs-unbatched differential oracles.
    pub fn run_with_dispatch(
        &self,
        discipline: &dyn Discipline,
        dispatch: netsim::DispatchMode,
    ) -> ExperimentResult {
        self.run_configured(
            discipline,
            paper_link(),
            sim_core::event::QueueBackend::Wheel,
            dispatch,
            None,
        )
    }

    /// Runs the scenario with a telemetry [`Probe`] installed on every
    /// node: disciplines publish their per-epoch internals (detector
    /// `q_avg`, selector `r_av`/`w_av`/`p_w`, per-flow `b_g`, CSFQ
    /// `alpha`, …) into it as the run progresses. The probe is shared —
    /// read it back after the run via the same `Rc`.
    pub fn run_instrumented(
        &self,
        discipline: &dyn Discipline,
        backend: sim_core::event::QueueBackend,
        probe: Rc<RefCell<dyn Probe>>,
    ) -> ExperimentResult {
        self.run_configured(
            discipline,
            paper_link(),
            backend,
            netsim::DispatchMode::Train,
            Some(probe),
        )
    }

    /// Runs the scenario probed like
    /// [`run_instrumented`](Scenario::run_instrumented), but under a
    /// specific transmission-dispatch mode — the telemetry half of the
    /// batched-vs-unbatched differential oracles.
    pub fn run_instrumented_dispatch(
        &self,
        discipline: &dyn Discipline,
        dispatch: netsim::DispatchMode,
        probe: Rc<RefCell<dyn Probe>>,
    ) -> ExperimentResult {
        self.run_configured(
            discipline,
            paper_link(),
            sim_core::event::QueueBackend::Wheel,
            dispatch,
            Some(probe),
        )
    }

    /// Runs the scenario with every link using `link` instead of the
    /// paper's parameters — the knob behind the latency/capacity
    /// sensitivity ablations (§4.4 mentions "channels with large
    /// latencies").
    pub fn run_with_link(
        &self,
        discipline: &dyn Discipline,
        link: netsim::link::LinkSpec,
    ) -> ExperimentResult {
        self.run_configured(
            discipline,
            link,
            sim_core::event::QueueBackend::Wheel,
            netsim::DispatchMode::Train,
            None,
        )
    }

    fn run_configured(
        &self,
        discipline: &dyn Discipline,
        link: netsim::link::LinkSpec,
        backend: sim_core::event::QueueBackend,
        dispatch: netsim::DispatchMode,
        probe: Option<Rc<RefCell<dyn Probe>>>,
    ) -> ExperimentResult {
        if self.shards > 1 {
            return self
                .run_sharded_configured(discipline, self.shards, link, backend, dispatch, probe)
                .0;
        }
        let mut b = self.builder_for(discipline, link, backend, dispatch);
        if let Some(p) = probe {
            b.probe(p);
        }
        let reference = ReferenceSpec::of(discipline, &self.flows);
        let mut net = b.build();
        net.run_until(self.horizon);
        ExperimentResult {
            scenario: self.clone(),
            discipline_name: discipline.name(),
            reference,
            report: net.into_report(self.horizon),
        }
    }

    /// Runs the scenario on the sharded conservative-parallel engine
    /// (see [`netsim::shard`]) with the paper's links and default
    /// backend, returning the merged result — byte-identical to
    /// [`run`](Scenario::run) — plus the events popped per shard.
    pub fn run_sharded(
        &self,
        discipline: &dyn Discipline,
        shards: usize,
    ) -> (ExperimentResult, Vec<u64>) {
        self.run_sharded_configured(
            discipline,
            shards,
            paper_link(),
            sim_core::event::QueueBackend::Wheel,
            netsim::DispatchMode::Train,
            None,
        )
    }

    /// Sharded counterpart of [`run_instrumented`](Scenario::run_instrumented):
    /// the merged telemetry stream is replayed into `probe` in canonical
    /// order, so the probe observes the exact serial sample sequence.
    pub fn run_instrumented_sharded(
        &self,
        discipline: &dyn Discipline,
        shards: usize,
        probe: Rc<RefCell<dyn Probe>>,
    ) -> (ExperimentResult, Vec<u64>) {
        self.run_sharded_configured(
            discipline,
            shards,
            paper_link(),
            sim_core::event::QueueBackend::Wheel,
            netsim::DispatchMode::Train,
            Some(probe),
        )
    }

    fn run_sharded_configured(
        &self,
        discipline: &dyn Discipline,
        shards: usize,
        link: netsim::link::LinkSpec,
        backend: sim_core::event::QueueBackend,
        dispatch: netsim::DispatchMode,
        probe: Option<Rc<RefCell<dyn Probe>>>,
    ) -> (ExperimentResult, Vec<u64>) {
        let outcome = netsim::shard::run_sharded(
            || self.builder_for(discipline, link, backend, dispatch),
            shards,
            self.horizon,
            probe.is_some(),
            false,
        );
        if let Some(p) = &probe {
            let mut p = p.borrow_mut();
            for (time, node, sample) in &outcome.probe_log {
                p.record(*time, *node, sample);
            }
        }
        let result = ExperimentResult {
            scenario: self.clone(),
            discipline_name: discipline.name(),
            reference: ReferenceSpec::of(discipline, &self.flows),
            report: outcome.report,
        };
        (result, outcome.per_shard_events)
    }

    /// Builds the scenario's full topology under `discipline` — the one
    /// construction path shared by the serial and sharded engines. The
    /// sharded executor calls this once per worker; identical inputs
    /// yield identical builders, which the byte-identity of the whole
    /// scheme rests on.
    fn builder_for(
        &self,
        discipline: &dyn Discipline,
        link: netsim::link::LinkSpec,
        backend: sim_core::event::QueueBackend,
        dispatch: netsim::DispatchMode,
    ) -> TopologyBuilder {
        let mut b = TopologyBuilder::new(self.seed);
        b.queue_backend(backend);
        b.dispatch_mode(dispatch);
        // The shared core network.
        let cores: Vec<_> = (0..self.topology.core_count)
            .map(|i| b.node(&format!("C{}", i + 1), |s| discipline.core_logic(s)))
            .collect();
        for &(src, dst) in &self.topology.links {
            b.link(cores[src], cores[dst], link);
        }
        // Per-flow ingress and egress edges on access links.
        for (i, f) in self.flows.iter().enumerate() {
            let ingress = b.node(&format!("E{}", i + 1), |s| discipline.edge_logic(s, f));
            let egress = b.node(&format!("X{}", i + 1), |s| discipline.egress_logic(s));
            b.link(ingress, cores[f.path.first()], link);
            b.link(cores[f.path.last()], egress, link);
            let mut path = vec![ingress];
            path.extend(f.path.0.iter().map(|&c| cores[c]));
            path.push(egress);
            let mut spec = FlowSpec::new(path, f.weight)
                .min_rate(f.min_rate)
                .transport(f.transport);
            for &(start, stop) in &f.activations {
                spec = spec.active(start, stop);
            }
            b.flow(spec);
        }
        // Churn routes get one shared ingress/egress edge pair per
        // template — arrivals are dynamic, so edges cannot be per-flow.
        // The edge logic sees a representative weight-1 flow; the real
        // per-arrival weight reaches it through each flow's FlowInfo.
        if let Some(churn) = &self.churn {
            let node_routes = churn
                .routes
                .iter()
                .enumerate()
                .map(|(i, path)| {
                    let template = ScenarioFlow::best_effort(path.clone(), 1, SimTime::ZERO);
                    let ingress = b.node(&format!("CE{}", i + 1), |s| {
                        discipline.edge_logic(s, &template)
                    });
                    let egress = b.node(&format!("CX{}", i + 1), |s| discipline.egress_logic(s));
                    b.link(ingress, cores[path.first()], link);
                    b.link(cores[path.last()], egress, link);
                    let mut nodes = vec![ingress];
                    nodes.extend(path.0.iter().map(|&c| cores[c]));
                    nodes.push(egress);
                    nodes
                })
                .collect();
            b.churn(churn.to_spec(node_routes, self.horizon));
        }
        if !self.faults.is_empty() {
            b.faults(self.faults.to_plan());
        }
        b
    }

    /// Returns the indices (0-based) of flows active at time `t`.
    pub fn active_at(&self, t: SimTime) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.activations
                    .iter()
                    .any(|&(start, stop)| t >= start && stop.is_none_or(|s| t < s))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Computes the analytic weighted max-min fair allocation over the
    /// flows active at time `t`, using the flows' configured weights and
    /// floors (the discipline-independent paper reference). Returns one
    /// entry per flow (0-based index); inactive flows get 0.
    pub fn expected_rates_at(&self, t: SimTime) -> Vec<f64> {
        let weights: Vec<f64> = self.flows.iter().map(|f| f.weight as f64).collect();
        let caps = vec![None; self.flows.len()];
        self.reference_rates_at(t, &weights, &caps)
    }

    /// The weighted max-min allocation at `t` under explicit per-flow
    /// reference weights and optional offered-rate caps (see
    /// [`Discipline::reference_weight`] and [`Discipline::offered_rate`]).
    /// Every core link has the paper capacity; caps are applied to each
    /// flow's water-filling share elementwise, which is exact when the
    /// capped flows are not bottlenecked by each other (and a documented
    /// approximation otherwise).
    pub fn reference_rates_at(
        &self,
        t: SimTime,
        weights: &[f64],
        caps: &[Option<f64>],
    ) -> Vec<f64> {
        let active = self.active_at(t);
        let mut problem = MaxMinProblem::new();
        let links: Vec<_> = (0..self.topology.link_count())
            .map(|_| problem.link(LINK_CAPACITY_PPS))
            .collect();
        let mut refs = Vec::new();
        for &i in &active {
            let f = &self.flows[i];
            let crossed: Vec<_> = f
                .path
                .link_indices(&self.topology)
                .into_iter()
                .map(|l| links[l])
                .collect();
            refs.push((i, problem.flow_with_floor(weights[i], f.min_rate, crossed)));
        }
        let alloc = problem.solve();
        let mut out = vec![0.0; self.flows.len()];
        for (i, r) in refs {
            out[i] = match caps[i] {
                Some(cap) => alloc.rate(r).min(cap),
                None => alloc.rate(r),
            };
        }
        out
    }
}

/// How the analytic reference allocation should treat each flow under
/// the discipline that produced a result: the reference weights and the
/// open-loop offered-rate caps. Plain data, so [`ExperimentResult`]
/// stays `Debug` and thread-transferable.
#[derive(Debug, Clone)]
pub struct ReferenceSpec {
    /// Per-flow reference weight.
    pub weights: Vec<f64>,
    /// Per-flow offered-rate cap (`None` = adaptive source, uncapped).
    pub caps: Vec<Option<f64>>,
}

impl ReferenceSpec {
    /// Captures the discipline's expectation hooks for `flows`.
    pub fn of(discipline: &dyn Discipline, flows: &[ScenarioFlow]) -> Self {
        ReferenceSpec {
            weights: flows
                .iter()
                .map(|f| discipline.reference_weight(f))
                .collect(),
            caps: flows.iter().map(|f| discipline.offered_rate(f)).collect(),
        }
    }
}

/// The outcome of running a [`Scenario`].
#[derive(Debug)]
pub struct ExperimentResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// The registered name of the discipline that ran.
    pub discipline_name: &'static str,
    /// The discipline's analytic-expectation hooks, captured at run time.
    pub reference: ReferenceSpec,
    /// The full simulation report.
    pub report: SimReport,
}

impl ExperimentResult {
    /// The allotted-rate series of flow `i` (0-based), as recorded by its
    /// ingress edge.
    ///
    /// # Panics
    ///
    /// Panics if the flow does not exist or recorded no series (open-loop
    /// sources don't; see [`ExperimentResult::rate_series`]).
    pub fn allotted_rate(&self, i: usize) -> &TimeSeries {
        self.report
            .allotted_rate(FlowId::from_index(i))
            .unwrap_or_else(|| panic!("flow {i} has no allotted-rate series"))
    }

    /// The best available rate series for flow `i`: the edge-recorded
    /// allotted rate when the discipline exports one (Corelite, CSFQ),
    /// otherwise the measured delivered-goodput series (the open-loop
    /// baselines, whose sources grant themselves a constant rate).
    pub fn rate_series(&self, i: usize) -> &TimeSeries {
        self.report
            .allotted_rate(FlowId::from_index(i))
            .unwrap_or(&self.report.flows[i].goodput)
    }

    /// Mean rate of flow `i` over `[from, to)` per
    /// [`ExperimentResult::rate_series`], or 0 if no samples fall in the
    /// window.
    pub fn mean_rate_in(&self, i: usize, from: SimTime, to: SimTime) -> f64 {
        self.rate_series(i).mean_in(from, to).unwrap_or(0.0)
    }

    /// The analytic reference allocation at `t` under the discipline
    /// that produced this result (reference weights and offered-rate
    /// caps included). This is what measured rates should be compared
    /// against in discipline-spanning tables.
    pub fn expected_rates_at(&self, t: SimTime) -> Vec<f64> {
        self.scenario
            .reference_rates_at(t, &self.reference.weights, &self.reference.caps)
    }

    /// Total packets dropped anywhere during the run.
    pub fn total_drops(&self) -> u64 {
        self.report.total_drops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::{self, Corelite, Csfq};
    use crate::topology::Route;
    use corelite::CoreliteConfig;
    use csfq::CsfqConfig;
    use sim_core::time::SimDuration;

    fn two_flow_scenario() -> Scenario {
        Scenario::paper(
            "test",
            vec![
                ScenarioFlow {
                    transport: Default::default(),
                    path: Route::new(0, 1).into(),
                    weight: 1,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                },
                ScenarioFlow {
                    transport: Default::default(),
                    path: Route::new(0, 1).into(),
                    weight: 2,
                    min_rate: 0.0,
                    activations: vec![(SimTime::from_secs(10), Some(SimTime::from_secs(20)))],
                },
            ],
            SimTime::from_secs(30),
            1,
        )
    }

    #[test]
    fn active_sets_follow_schedule() {
        let s = two_flow_scenario();
        assert_eq!(s.active_at(SimTime::from_secs(5)), vec![0]);
        assert_eq!(s.active_at(SimTime::from_secs(15)), vec![0, 1]);
        assert_eq!(s.active_at(SimTime::from_secs(25)), vec![0]);
    }

    #[test]
    fn expected_rates_track_active_set() {
        let s = two_flow_scenario();
        let solo = s.expected_rates_at(SimTime::from_secs(5));
        assert!((solo[0] - 500.0).abs() < 1e-6);
        assert_eq!(solo[1], 0.0);
        let both = s.expected_rates_at(SimTime::from_secs(15));
        assert!((both[0] - 500.0 / 3.0).abs() < 1e-6);
        assert!((both[1] - 1000.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn corelite_run_produces_series_for_all_flows() {
        let mut s = two_flow_scenario();
        s.horizon = SimTime::from_secs(5);
        let result = s.run(&Corelite::new(
            CoreliteConfig::default().with_epoch(SimDuration::from_millis(100)),
        ));
        assert_eq!(result.discipline_name, "corelite");
        assert!(!result.allotted_rate(0).is_empty());
        // Flow 1 has not started yet within the 5 s horizon; its series
        // may be empty, but the report must still know the flow.
        assert_eq!(result.report.flows.len(), 2);
    }

    #[test]
    fn csfq_run_produces_series_for_started_flows() {
        let mut s = two_flow_scenario();
        s.horizon = SimTime::from_secs(5);
        let result = s.run(&Csfq::new(CsfqConfig::default()));
        assert_eq!(result.discipline_name, "csfq");
        assert!(!result.allotted_rate(0).is_empty());
    }

    #[test]
    fn open_loop_disciplines_fall_back_to_goodput_series() {
        let mut s = two_flow_scenario();
        s.horizon = SimTime::from_secs(20);
        let result = s.run(discipline::by_name("greedy").unwrap().as_ref());
        assert_eq!(result.discipline_name, "greedy");
        // Greedy sources export no allotted-rate series; the rate series
        // is the measured goodput, and it shows traffic flowed.
        assert!(result.report.allotted_rate(FlowId::from_index(0)).is_none());
        let mean = result.mean_rate_in(0, SimTime::from_secs(5), SimTime::from_secs(20));
        assert!(mean > 50.0, "greedy flow should deliver packets: {mean}");
    }

    #[test]
    fn reference_caps_bound_the_expectation() {
        let mut s = two_flow_scenario();
        s.flows[1].activations = vec![(SimTime::ZERO, None)];
        let reference =
            ReferenceSpec::of(discipline::by_name("greedy").unwrap().as_ref(), &s.flows);
        // Two greedy equal-weight flows on one link: uncapped share is
        // 250 each, capped at the 120 pkt/s offered rate.
        let rates =
            s.reference_rates_at(SimTime::from_secs(1), &reference.weights, &reference.caps);
        for r in rates {
            assert!((r - discipline::GREEDY_SOURCE_PPS).abs() < 1e-6, "{r}");
        }
    }

    #[test]
    fn parking_lot_long_flow_gets_half_capacity() {
        let s = Scenario::parking_lot(3, SimTime::from_secs(10), 1);
        assert_eq!(s.flows.len(), 4);
        let expected = s.expected_rates_at(SimTime::from_secs(1));
        for (i, r) in expected.iter().enumerate() {
            assert!(
                (r - LINK_CAPACITY_PPS / 2.0).abs() < 1e-6,
                "flow {i}: {r} (parking-lot equal split)"
            );
        }
    }

    #[test]
    fn fat_tree_mix_runs_on_a_non_chain_topology() {
        let s = Scenario::fat_tree_mix(SimTime::from_secs(10), 1);
        assert!(!s.topology.is_chain());
        let expected = s.expected_rates_at(SimTime::from_secs(1));
        assert!(expected.iter().all(|&r| r > 0.0), "{expected:?}");
    }
}
