//! A tiny text format for describing experiments, used by the
//! `corelite-sim` CLI.
//!
//! One directive per line; `#` starts a comment. Example:
//!
//! ```text
//! # three flows on the paper topology
//! name     my_experiment
//! seed     7
//! horizon  120
//! flow     route=0-1 weight=2
//! flow     route=0-3 weight=1 start=10 stop=60
//! flow     route=1-2 weight=3 min_rate=50
//! ```
//!
//! `route=A-B` means the flow enters the core chain at `C{A+1}` and exits
//! after `C{B+1}` (see [`crate::topology::Route`]); `start`/`stop` are seconds (a missing
//! `stop` keeps the flow alive to the horizon). For churn, give a flow
//! several activation periods with `active=START..STOP` attributes
//! (`active=0..60 active=65.. ` — an open end keeps it running):
//!
//! ```text
//! flow route=0-1 weight=2 active=0..60 active=65..
//! ```
//!
//! A `topology` directive selects the core network (default
//! `topology paper` — the Figure-2 chain):
//!
//! ```text
//! topology chain 6        # a 6-core chain
//! topology parking_lot 4  # 4 congested hops
//! topology fat_tree       # 4 leaves x 2 spines
//! flow path=0,4,3 weight=2  # explicit core path (fat-tree needs one)
//! ```
//!
//! `route=A-B` shorthand works on any chain topology; non-chain
//! topologies need explicit `path=` core lists. Every flow's path is
//! validated against the topology's links after parsing.

use std::fmt;

use sim_core::time::SimTime;

use crate::runner::{Scenario, ScenarioFlow};
use crate::topology::{CorePath, TopologySpec};

/// A parse failure, with the offending 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseScenarioError {}

/// Parses the scenario DSL (see the module docs).
///
/// # Errors
///
/// Returns a [`ParseScenarioError`] naming the offending line for unknown
/// directives, malformed values, or missing required fields.
pub fn parse_scenario(text: &str) -> Result<Scenario, ParseScenarioError> {
    let mut name: Option<String> = None;
    let mut seed = 0u64;
    let mut horizon: Option<f64> = None;
    let mut topology: Option<TopologySpec> = None;
    let mut flows: Vec<(usize, ScenarioFlow)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseScenarioError {
            line: line_no,
            message,
        };
        let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match directive {
            "name" => name = Some(rest.to_owned()),
            "seed" => {
                seed = rest
                    .parse()
                    .map_err(|_| err(format!("invalid seed {rest:?}")))?;
            }
            "horizon" => {
                let h: f64 = rest
                    .parse()
                    .map_err(|_| err(format!("invalid horizon {rest:?}")))?;
                if h <= 0.0 || h.is_nan() {
                    return Err(err("horizon must be positive".into()));
                }
                horizon = Some(h);
            }
            "flow" => flows.push((line_no, parse_flow(rest, line_no)?)),
            "topology" => {
                if topology.is_some() {
                    return Err(err("duplicate `topology` directive".into()));
                }
                topology = Some(parse_topology(rest, line_no)?);
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }

    let horizon = horizon.ok_or(ParseScenarioError {
        line: 0,
        message: "missing `horizon` directive".into(),
    })?;
    if flows.is_empty() {
        return Err(ParseScenarioError {
            line: 0,
            message: "no `flow` directives".into(),
        });
    }
    let topology = topology.unwrap_or_else(TopologySpec::paper_chain);
    // Paths were only range-checked during parsing; check them against
    // the topology's actual links now that it is known.
    for (line, f) in &flows {
        for hop in f.path.0.windows(2) {
            if hop[0] >= topology.core_count || hop[1] >= topology.core_count {
                return Err(ParseScenarioError {
                    line: *line,
                    message: format!(
                        "core {} out of range for topology `{}` ({} cores)",
                        hop[0].max(hop[1]),
                        topology.name,
                        topology.core_count
                    ),
                });
            }
            if topology.link_index(hop[0], hop[1]).is_none() {
                return Err(ParseScenarioError {
                    line: *line,
                    message: format!(
                        "hop {}->{} is not a link of topology `{}`",
                        hop[0], hop[1], topology.name
                    ),
                });
            }
        }
    }
    // `Scenario.name` is `&'static str` for table labels; leak the parsed
    // name (a CLI parses one scenario per process).
    let name: &'static str = Box::leak(name.unwrap_or_else(|| "cli".into()).into_boxed_str());
    Ok(Scenario::on(
        topology,
        name,
        flows.into_iter().map(|(_, f)| f).collect(),
        SimTime::from_secs_f64(horizon),
        seed,
    ))
}

fn parse_topology(rest: &str, line: usize) -> Result<TopologySpec, ParseScenarioError> {
    let err = |message: String| ParseScenarioError { line, message };
    let mut parts = rest.split_whitespace();
    let kind = parts.next().unwrap_or("");
    let arg = parts.next();
    if parts.next().is_some() {
        return Err(err(format!("too many arguments to `topology {kind}`")));
    }
    let parse_arg = |what: &str| -> Result<usize, ParseScenarioError> {
        let v = arg.ok_or_else(|| err(format!("`topology {kind}` needs a {what}")))?;
        let n: usize = v
            .parse()
            .map_err(|_| err(format!("invalid {what} {v:?}")))?;
        if n < if kind == "chain" { 2 } else { 1 } {
            return Err(err(format!("{what} {n} too small for `topology {kind}`")));
        }
        Ok(n)
    };
    match kind {
        "paper" => Ok(TopologySpec::paper_chain()),
        "chain" => Ok(TopologySpec::chain(parse_arg("core count")?)),
        "parking_lot" => Ok(TopologySpec::parking_lot(parse_arg("hop count")?)),
        "fat_tree" => {
            if arg.is_some() {
                return Err(err("`topology fat_tree` takes no argument".into()));
            }
            Ok(TopologySpec::fat_tree())
        }
        other => Err(err(format!(
            "unknown topology {other:?} (expected paper, chain, parking_lot, or fat_tree)"
        ))),
    }
}

fn parse_flow(rest: &str, line: usize) -> Result<ScenarioFlow, ParseScenarioError> {
    let err = |message: String| ParseScenarioError { line, message };
    let mut path: Option<CorePath> = None;
    let mut weight = 1u32;
    let mut min_rate = 0.0f64;
    let mut start = 0.0f64;
    let mut stop: Option<f64> = None;
    let mut activations: Vec<(SimTime, Option<SimTime>)> = Vec::new();
    for kv in rest.split_whitespace() {
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| err(format!("expected key=value, got {kv:?}")))?;
        match key {
            "route" => {
                let (a, b) = value
                    .split_once('-')
                    .ok_or_else(|| err(format!("route must be A-B, got {value:?}")))?;
                let a: usize = a
                    .parse()
                    .map_err(|_| err(format!("invalid route start {a:?}")))?;
                let b: usize = b
                    .parse()
                    .map_err(|_| err(format!("invalid route end {b:?}")))?;
                if a >= b {
                    return Err(err(format!("route {a}-{b} out of range (need A < B)")));
                }
                path = Some(CorePath::new((a..=b).collect()));
            }
            "path" => {
                let cores: Vec<usize> = value
                    .split(',')
                    .map(|c| {
                        c.parse()
                            .map_err(|_| err(format!("invalid path core {c:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                if cores.len() < 2 {
                    return Err(err(format!("path needs at least two cores, got {value:?}")));
                }
                path = Some(CorePath::new(cores));
            }
            "weight" => {
                weight = value
                    .parse()
                    .map_err(|_| err(format!("invalid weight {value:?}")))?;
                if weight == 0 {
                    return Err(err("weight must be positive".into()));
                }
            }
            "min_rate" => {
                min_rate = value
                    .parse()
                    .map_err(|_| err(format!("invalid min_rate {value:?}")))?;
                if min_rate < 0.0 {
                    return Err(err("min_rate must be non-negative".into()));
                }
            }
            "start" => {
                start = value
                    .parse()
                    .map_err(|_| err(format!("invalid start {value:?}")))?;
            }
            "stop" => {
                stop = Some(
                    value
                        .parse()
                        .map_err(|_| err(format!("invalid stop {value:?}")))?,
                );
            }
            "active" => {
                let (a, b) = value
                    .split_once("..")
                    .ok_or_else(|| err(format!("active must be START..STOP, got {value:?}")))?;
                let a: f64 = a
                    .parse()
                    .map_err(|_| err(format!("invalid activation start {a:?}")))?;
                let b: Option<f64> = if b.is_empty() {
                    None
                } else {
                    Some(
                        b.parse()
                            .map_err(|_| err(format!("invalid activation stop {b:?}")))?,
                    )
                };
                if let Some(b) = b {
                    if b <= a {
                        return Err(err(format!("activation {a}..{b} ends before it starts")));
                    }
                }
                activations.push((SimTime::from_secs_f64(a), b.map(SimTime::from_secs_f64)));
            }
            other => return Err(err(format!("unknown flow attribute {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| err("flow needs route=A-B or path=C0,C1,...".into()))?;
    if let Some(stop) = stop {
        if stop <= start {
            return Err(err(format!("stop {stop} must be after start {start}")));
        }
    }
    if activations.is_empty() {
        activations.push((
            SimTime::from_secs_f64(start),
            stop.map(SimTime::from_secs_f64),
        ));
    } else if start != 0.0 || stop.is_some() {
        return Err(err(
            "use either start/stop or active=.. ranges, not both".into()
        ));
    }
    Ok(ScenarioFlow {
        path,
        weight,
        min_rate,
        activations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Route;

    const GOOD: &str = "\
# demo
name demo
seed 9
horizon 30
flow route=0-1 weight=2
flow route=0-3 weight=1 start=5 stop=20 min_rate=10
";

    #[test]
    fn parses_a_full_scenario() {
        let s = parse_scenario(GOOD).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.seed, 9);
        assert_eq!(s.horizon, SimTime::from_secs(30));
        assert_eq!(s.flows.len(), 2);
        assert_eq!(s.topology, crate::topology::TopologySpec::paper_chain());
        assert_eq!(s.flows[0].path, Route::new(0, 1).into());
        assert_eq!(s.flows[0].weight, 2);
        assert_eq!(s.flows[1].min_rate, 10.0);
        assert_eq!(
            s.flows[1].activations,
            vec![(SimTime::from_secs(5), Some(SimTime::from_secs(20)))]
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = parse_scenario("horizon 10 # trailing\n\n# full line\nflow route=0-1\n").unwrap();
        assert_eq!(s.flows.len(), 1);
        assert_eq!(s.flows[0].weight, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_scenario("horizon 10\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        assert!(e.to_string().starts_with("line 2"));
    }

    #[test]
    fn missing_horizon_rejected() {
        let e = parse_scenario("flow route=0-1\n").unwrap_err();
        assert!(e.message.contains("horizon"));
    }

    #[test]
    fn missing_flows_rejected() {
        let e = parse_scenario("horizon 5\n").unwrap_err();
        assert!(e.message.contains("flow"));
    }

    #[test]
    fn bad_route_rejected() {
        for bad in ["route=3-1", "route=0-9", "route=x-1", "route=01"] {
            let e = parse_scenario(&format!("horizon 5\nflow {bad}\n")).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
        }
    }

    #[test]
    fn topology_directive_selects_the_core_network() {
        let s = parse_scenario("topology chain 6\nhorizon 10\nflow route=0-5\n").unwrap();
        assert_eq!(s.topology.core_count, 6);
        assert_eq!(s.flows[0].path.0, vec![0, 1, 2, 3, 4, 5]);
        let s = parse_scenario("topology fat_tree\nhorizon 10\nflow path=0,4,3\n").unwrap();
        assert_eq!(s.topology.name, "fat_tree");
        assert_eq!(s.flows[0].path.0, vec![0, 4, 3]);
    }

    #[test]
    fn paths_are_validated_against_the_topology() {
        // route=0-5 is fine on a 6-core chain but not on the paper chain.
        let e = parse_scenario("horizon 10\nflow route=0-5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"), "{}", e.message);
        // A leaf-to-leaf hop skips the spine: not a fat-tree link.
        let e = parse_scenario("topology fat_tree\nhorizon 10\nflow path=0,3\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("not a link"), "{}", e.message);
    }

    #[test]
    fn bad_topology_directives_rejected() {
        for bad in [
            "topology mesh",
            "topology chain",
            "topology chain x",
            "topology chain 1",
            "topology fat_tree 3",
            "topology paper extra stuff",
        ] {
            let e = parse_scenario(&format!("{bad}\nhorizon 5\nflow route=0-1\n")).unwrap_err();
            assert_eq!(e.line, 1, "{bad}");
        }
        let e = parse_scenario("topology paper\ntopology paper\nhorizon 5\nflow route=0-1\n")
            .unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn inverted_activation_rejected() {
        let e = parse_scenario("horizon 5\nflow route=0-1 start=4 stop=2\n").unwrap_err();
        assert!(e.message.contains("after start"));
    }

    #[test]
    fn active_ranges_support_churn() {
        let s = parse_scenario(
            "horizon 100
flow route=0-1 active=0..60 active=65..
",
        )
        .unwrap();
        assert_eq!(
            s.flows[0].activations,
            vec![
                (SimTime::ZERO, Some(SimTime::from_secs(60))),
                (SimTime::from_secs(65), None),
            ]
        );
    }

    #[test]
    fn active_and_start_stop_are_exclusive() {
        let e = parse_scenario(
            "horizon 100
flow route=0-1 start=5 active=0..60
",
        )
        .unwrap_err();
        assert!(e.message.contains("not both"));
    }

    #[test]
    fn inverted_active_range_rejected() {
        let e = parse_scenario(
            "horizon 100
flow route=0-1 active=60..60
",
        )
        .unwrap_err();
        assert!(e.message.contains("ends before"));
    }

    #[test]
    fn unknown_flow_attribute_rejected() {
        let e = parse_scenario("horizon 5\nflow route=0-1 color=red\n").unwrap_err();
        assert!(e.message.contains("color"));
    }
}
