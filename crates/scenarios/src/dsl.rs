//! A tiny text format for describing experiments, used by the
//! `corelite-sim` CLI.
//!
//! One directive per line; `#` starts a comment. Example:
//!
//! ```text
//! # three flows on the paper topology
//! name     my_experiment
//! seed     7
//! horizon  120
//! flow     route=0-1 weight=2
//! flow     route=0-3 weight=1 start=10 stop=60
//! flow     route=1-2 weight=3 min_rate=50
//! ```
//!
//! `route=A-B` means the flow enters the core chain at `C{A+1}` and exits
//! after `C{B+1}` (see [`crate::topology::Route`]); `start`/`stop` are seconds (a missing
//! `stop` keeps the flow alive to the horizon). For churn, give a flow
//! several activation periods with `active=START..STOP` attributes
//! (`active=0..60 active=65.. ` — an open end keeps it running):
//!
//! ```text
//! flow route=0-1 weight=2 active=0..60 active=65..
//! ```
//!
//! A `transport=` attribute picks the ingress sender: the default
//! open-loop `limd` rate controller, or a closed-loop go-back-N sender
//! clocked by cumulative acks — `gbn` (window-LIMD congestion control)
//! or `reno` (slow start + AIMD):
//!
//! ```text
//! flow route=0-2 weight=2 transport=reno
//! ```
//!
//! A `topology` directive selects the core network (default
//! `topology paper` — the Figure-2 chain):
//!
//! ```text
//! topology chain 6        # a 6-core chain
//! topology parking_lot 4  # 4 congested hops
//! topology fat_tree       # 4 leaves x 2 spines
//! flow path=0,4,3 weight=2  # explicit core path (fat-tree needs one)
//! ```
//!
//! `route=A-B` shorthand works on any chain topology; non-chain
//! topologies need explicit `path=` core lists. Every flow's path is
//! validated against the topology's links after parsing.
//!
//! A `fault { ... }` block injects dirty-network conditions (see
//! [`crate::fault::FaultSpec`]); one fault directive per line, times in
//! seconds, link/core numbers as in the `topology` directive:
//!
//! ```text
//! fault {
//!     control_loss  0.2        # lose 20% of control messages
//!     control_delay 0.05 0.01  # +50 ms, up to 10 ms jitter
//!     marker_loss   1 0.5      # strip half the markers on core link 1
//!     flap          0 10 12    # core link 0 down during [10 s, 12 s)
//!     pause         2 30 31    # core 2's control plane pauses [30, 31)
//! }
//! ```
//!
//! Link and core indices are validated against the topology after
//! parsing, like flow paths.
//!
//! A `churn { ... }` block installs a dynamic flow-arrival process (see
//! [`crate::runner::ScenarioChurn`]); a scenario with a churn block may
//! omit static `flow` directives entirely:
//!
//! ```text
//! churn {
//!     arrivals 20          # Poisson arrival rate, flows per second
//!     size     50          # mean flow size, packets (Pareto)
//!     rate     100         # nominal send rate, pkt/s
//!     route    0-1         # route template (repeatable)
//!     path     0,4,3       # explicit core path template (repeatable)
//!     weights  1 2 4       # weight classes drawn uniformly
//!     window   0 60        # arrivals during [0 s, 60 s) (default: whole run)
//!     linger   1           # slot drain delay, seconds
//!     shape    1.8         # Pareto tail index
//!     max_arrivals 1000    # cap on total arrivals
//! }
//! ```
//!
//! Churn route templates are validated against the topology exactly like
//! static flow paths.
//!
//! A `shards` directive runs the scenario on the sharded parallel engine
//! with that many workers (`shards 1`, the default, is the serial
//! engine). Results are byte-identical at every shard count, so the knob
//! only changes wall-clock behaviour; `corelite-sim --shards N`
//! overrides it from the command line:
//!
//! ```text
//! shards 4
//! ```

use std::fmt;

use netsim::Transport;
use sim_core::time::SimTime;

use crate::fault::FaultSpec;
use crate::runner::{Scenario, ScenarioChurn, ScenarioFlow};
use crate::topology::{CorePath, TopologySpec};

/// A parse failure, with the offending 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseScenarioError {}

/// Parses the scenario DSL (see the module docs).
///
/// # Errors
///
/// Returns a [`ParseScenarioError`] naming the offending line for unknown
/// directives, malformed values, or missing required fields.
pub fn parse_scenario(text: &str) -> Result<Scenario, ParseScenarioError> {
    let mut name: Option<String> = None;
    let mut seed = 0u64;
    let mut shards: usize = 1;
    let mut horizon: Option<f64> = None;
    let mut topology: Option<TopologySpec> = None;
    let mut flows: Vec<(usize, ScenarioFlow)> = Vec::new();
    let mut faults = FaultSpec::default();
    // `(line, kind, index)` of every fault directive that names a link or
    // core — validated against the topology once it is known.
    let mut fault_indices: Vec<(usize, FaultIndex, usize)> = Vec::new();
    let mut fault_block_open: Option<usize> = None;
    let mut churn: Option<ChurnDraft> = None;
    let mut churn_block_open: Option<usize> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseScenarioError {
            line: line_no,
            message,
        };
        if fault_block_open.is_some() {
            if line == "}" {
                fault_block_open = None;
            } else if let Some(named) = parse_fault_directive(line, line_no, &mut faults)? {
                fault_indices.push(named);
            }
            continue;
        }
        if churn_block_open.is_some() {
            if line == "}" {
                churn_block_open = None;
            } else {
                let draft = churn.as_mut().expect("open block implies a draft");
                parse_churn_directive(line, line_no, draft)?;
            }
            continue;
        }
        let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match directive {
            "name" => name = Some(rest.to_owned()),
            "seed" => {
                seed = rest
                    .parse()
                    .map_err(|_| err(format!("invalid seed {rest:?}")))?;
            }
            "shards" => {
                shards = rest
                    .parse()
                    .map_err(|_| err(format!("invalid shards {rest:?}")))?;
                if shards == 0 {
                    return Err(err("shards must be at least 1".into()));
                }
            }
            "horizon" => {
                let h: f64 = rest
                    .parse()
                    .map_err(|_| err(format!("invalid horizon {rest:?}")))?;
                if h <= 0.0 || h.is_nan() {
                    return Err(err("horizon must be positive".into()));
                }
                horizon = Some(h);
            }
            "flow" => flows.push((line_no, parse_flow(rest, line_no)?)),
            "fault" => {
                if rest != "{" {
                    return Err(err(format!("expected `fault {{`, got `fault {rest}`")));
                }
                fault_block_open = Some(line_no);
            }
            "churn" => {
                if rest != "{" {
                    return Err(err(format!("expected `churn {{`, got `churn {rest}`")));
                }
                if churn.is_some() {
                    return Err(err("duplicate `churn {` block".into()));
                }
                churn = Some(ChurnDraft::new(line_no));
                churn_block_open = Some(line_no);
            }
            "topology" => {
                if topology.is_some() {
                    return Err(err("duplicate `topology` directive".into()));
                }
                topology = Some(parse_topology(rest, line_no)?);
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }

    if let Some(open) = fault_block_open {
        return Err(ParseScenarioError {
            line: open,
            message: "unclosed `fault {` block".into(),
        });
    }
    if let Some(open) = churn_block_open {
        return Err(ParseScenarioError {
            line: open,
            message: "unclosed `churn {` block".into(),
        });
    }
    let horizon = horizon.ok_or(ParseScenarioError {
        line: 0,
        message: "missing `horizon` directive".into(),
    })?;
    if flows.is_empty() && churn.is_none() {
        return Err(ParseScenarioError {
            line: 0,
            message: "no `flow` directives (and no `churn` block)".into(),
        });
    }
    let churn = churn.map(ChurnDraft::finish).transpose()?;
    let topology = topology.unwrap_or_else(TopologySpec::paper_chain);
    // Paths were only range-checked during parsing; check them against
    // the topology's actual links now that it is known. Churn route
    // templates get exactly the same validation as static flow paths.
    let churn_routes = churn
        .iter()
        .flat_map(|c| c.routes.iter().map(|&(line, ref path)| (line, path)));
    for (line, path) in flows
        .iter()
        .map(|&(line, ref f)| (line, &f.path))
        .chain(churn_routes)
    {
        for hop in path.0.windows(2) {
            if hop[0] >= topology.core_count || hop[1] >= topology.core_count {
                return Err(ParseScenarioError {
                    line,
                    message: format!(
                        "core {} out of range for topology `{}` ({} cores)",
                        hop[0].max(hop[1]),
                        topology.name,
                        topology.core_count
                    ),
                });
            }
            if topology.link_index(hop[0], hop[1]).is_none() {
                return Err(ParseScenarioError {
                    line,
                    message: format!(
                        "hop {}->{} is not a link of topology `{}`",
                        hop[0], hop[1], topology.name
                    ),
                });
            }
        }
    }
    // Same late validation for fault targets.
    for &(line, kind, index) in &fault_indices {
        let (what, limit) = match kind {
            FaultIndex::Link => ("link", topology.link_count()),
            FaultIndex::Core => ("core", topology.core_count),
        };
        if index >= limit {
            return Err(ParseScenarioError {
                line,
                message: format!(
                    "{what} {index} out of range for topology `{}` ({limit} {what}s)",
                    topology.name
                ),
            });
        }
    }
    // `Scenario.name` is `&'static str` for table labels; leak the parsed
    // name (a CLI parses one scenario per process).
    let name: &'static str = Box::leak(name.unwrap_or_else(|| "cli".into()).into_boxed_str());
    let mut scenario = Scenario::on(
        topology,
        name,
        flows.into_iter().map(|(_, f)| f).collect(),
        SimTime::from_secs_f64(horizon),
        seed,
    )
    .with_faults(faults)
    .with_shards(shards);
    if let Some(c) = churn {
        scenario = scenario.with_churn(c.spec);
    }
    Ok(scenario)
}

/// A `churn { ... }` block under construction, with line-tagged routes
/// for late validation against the topology.
#[derive(Debug)]
struct ChurnDraft {
    open_line: usize,
    arrivals: Option<f64>,
    size: Option<f64>,
    rate: Option<f64>,
    routes: Vec<(usize, CorePath)>,
    weights: Option<Vec<u32>>,
    window: Option<(f64, f64)>,
    linger: Option<f64>,
    shape: Option<f64>,
    max_arrivals: Option<u64>,
}

/// A finished churn block: the spec to install, plus line-tagged routes
/// for validation against the (possibly later-declared) topology.
#[derive(Debug)]
struct ParsedChurn {
    routes: Vec<(usize, CorePath)>,
    spec: ScenarioChurn,
}

impl ChurnDraft {
    fn new(open_line: usize) -> Self {
        ChurnDraft {
            open_line,
            arrivals: None,
            size: None,
            rate: None,
            routes: Vec::new(),
            weights: None,
            window: None,
            linger: None,
            shape: None,
            max_arrivals: None,
        }
    }

    fn finish(self) -> Result<ParsedChurn, ParseScenarioError> {
        let err = |message: String| ParseScenarioError {
            line: self.open_line,
            message,
        };
        let arrivals = self
            .arrivals
            .ok_or_else(|| err("churn block needs an `arrivals` rate".into()))?;
        let size = self
            .size
            .ok_or_else(|| err("churn block needs a mean `size`".into()))?;
        let rate = self
            .rate
            .ok_or_else(|| err("churn block needs a nominal `rate`".into()))?;
        if self.routes.is_empty() {
            return Err(err(
                "churn block needs at least one `route` or `path`".into()
            ));
        }
        let mut spec = ScenarioChurn::new(arrivals, size, rate);
        for (_, path) in &self.routes {
            spec = spec.route(path.clone());
        }
        if let Some(weights) = self.weights {
            spec = spec.weights(weights);
        }
        if let Some((from, until)) = self.window {
            spec = spec.window(SimTime::from_secs_f64(from), SimTime::from_secs_f64(until));
        }
        if let Some(linger) = self.linger {
            spec.linger_secs = linger;
        }
        if let Some(shape) = self.shape {
            spec.pareto_shape = shape;
        }
        spec.max_arrivals = self.max_arrivals;
        Ok(ParsedChurn {
            routes: self.routes,
            spec,
        })
    }
}

/// Parses one directive inside a `churn { ... }` block into `draft`.
fn parse_churn_directive(
    line: &str,
    line_no: usize,
    draft: &mut ChurnDraft,
) -> Result<(), ParseScenarioError> {
    let err = |message: String| ParseScenarioError {
        line: line_no,
        message,
    };
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let expect_args = |n: usize| -> Result<(), ParseScenarioError> {
        if tokens.len() - 1 != n {
            return Err(err(format!(
                "`{}` takes {n} argument{}, got {}",
                tokens[0],
                if n == 1 { "" } else { "s" },
                tokens.len() - 1
            )));
        }
        Ok(())
    };
    let positive = |v: &str, what: &str| -> Result<f64, ParseScenarioError> {
        let n: f64 = v
            .parse()
            .map_err(|_| err(format!("invalid {what} {v:?}")))?;
        if !n.is_finite() || n <= 0.0 {
            return Err(err(format!("{what} must be finite and positive, got {n}")));
        }
        Ok(n)
    };
    match tokens[0] {
        "arrivals" => {
            expect_args(1)?;
            draft.arrivals = Some(positive(tokens[1], "arrival rate")?);
        }
        "size" => {
            expect_args(1)?;
            draft.size = Some(positive(tokens[1], "mean flow size")?);
        }
        "rate" => {
            expect_args(1)?;
            draft.rate = Some(positive(tokens[1], "nominal rate")?);
        }
        "route" => {
            expect_args(1)?;
            let (a, b) = tokens[1]
                .split_once('-')
                .ok_or_else(|| err(format!("route must be A-B, got {:?}", tokens[1])))?;
            let a: usize = a
                .parse()
                .map_err(|_| err(format!("invalid route start {a:?}")))?;
            let b: usize = b
                .parse()
                .map_err(|_| err(format!("invalid route end {b:?}")))?;
            if a >= b {
                return Err(err(format!("route {a}-{b} out of range (need A < B)")));
            }
            draft
                .routes
                .push((line_no, CorePath::new((a..=b).collect())));
        }
        "path" => {
            expect_args(1)?;
            let cores: Vec<usize> = tokens[1]
                .split(',')
                .map(|c| {
                    c.parse()
                        .map_err(|_| err(format!("invalid path core {c:?}")))
                })
                .collect::<Result<_, _>>()?;
            if cores.len() < 2 {
                return Err(err(format!(
                    "path needs at least two cores, got {:?}",
                    tokens[1]
                )));
            }
            draft.routes.push((line_no, CorePath::new(cores)));
        }
        "weights" => {
            if tokens.len() < 2 {
                return Err(err("`weights` needs at least one weight class".into()));
            }
            let weights: Vec<u32> = tokens[1..]
                .iter()
                .map(|w| {
                    w.parse::<u32>()
                        .ok()
                        .filter(|&w| w > 0)
                        .ok_or_else(|| err(format!("invalid weight {w:?}")))
                })
                .collect::<Result<_, _>>()?;
            draft.weights = Some(weights);
        }
        "window" => {
            expect_args(2)?;
            let from: f64 = tokens[1]
                .parse()
                .map_err(|_| err(format!("invalid window start {:?}", tokens[1])))?;
            let until = positive(tokens[2], "window end")?;
            if !from.is_finite() || from < 0.0 || until <= from {
                return Err(err(format!("window {from}..{until} ends before it starts")));
            }
            draft.window = Some((from, until));
        }
        "linger" => {
            expect_args(1)?;
            draft.linger = Some(positive(tokens[1], "linger")?);
        }
        "shape" => {
            expect_args(1)?;
            let shape = positive(tokens[1], "pareto shape")?;
            if shape <= 1.0 {
                return Err(err(format!(
                    "pareto shape must exceed 1 for a finite mean, got {shape}"
                )));
            }
            draft.shape = Some(shape);
        }
        "max_arrivals" => {
            expect_args(1)?;
            let n: u64 = tokens[1]
                .parse()
                .map_err(|_| err(format!("invalid max_arrivals {:?}", tokens[1])))?;
            if n == 0 {
                return Err(err("max_arrivals must be positive".into()));
            }
            draft.max_arrivals = Some(n);
        }
        other => {
            return Err(err(format!(
                "unknown churn directive {other:?} (expected arrivals, size, rate, \
                 route, path, weights, window, linger, shape, or max_arrivals)"
            )))
        }
    }
    Ok(())
}

/// Which kind of entity a fault directive indexed, for late validation.
#[derive(Debug, Clone, Copy)]
enum FaultIndex {
    Link,
    Core,
}

/// Parses one directive inside a `fault { ... }` block into `faults`.
/// Returns the named link/core index, if the directive has one, for
/// validation against the topology.
fn parse_fault_directive(
    line: &str,
    line_no: usize,
    faults: &mut FaultSpec,
) -> Result<Option<(usize, FaultIndex, usize)>, ParseScenarioError> {
    let err = |message: String| ParseScenarioError {
        line: line_no,
        message,
    };
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let expect_args = |n: usize| -> Result<(), ParseScenarioError> {
        if tokens.len() - 1 != n {
            return Err(err(format!(
                "`{}` takes {n} argument{}, got {}",
                tokens[0],
                if n == 1 { "" } else { "s" },
                tokens.len() - 1
            )));
        }
        Ok(())
    };
    let number = |v: &str, what: &str| -> Result<f64, ParseScenarioError> {
        let n: f64 = v
            .parse()
            .map_err(|_| err(format!("invalid {what} {v:?}")))?;
        if !n.is_finite() || n < 0.0 {
            return Err(err(format!("{what} must be finite and non-negative")));
        }
        Ok(n)
    };
    let probability = |v: &str, what: &str| -> Result<f64, ParseScenarioError> {
        let p = number(v, what)?;
        if p > 1.0 {
            return Err(err(format!("{what} must be in [0, 1], got {p}")));
        }
        Ok(p)
    };
    let index = |v: &str, what: &str| -> Result<usize, ParseScenarioError> {
        v.parse().map_err(|_| err(format!("invalid {what} {v:?}")))
    };
    let window = |a: &str, b: &str| -> Result<(f64, f64), ParseScenarioError> {
        let from = number(a, "window start")?;
        let until = number(b, "window end")?;
        if until <= from {
            return Err(err(format!("window {from}..{until} ends before it starts")));
        }
        Ok((from, until))
    };
    match tokens[0] {
        "control_loss" => {
            expect_args(1)?;
            faults.control_loss = probability(tokens[1], "control loss probability")?;
            Ok(None)
        }
        "control_delay" => {
            if tokens.len() < 2 || tokens.len() > 3 {
                return Err(err("`control_delay` takes DELAY [JITTER] in seconds".into()));
            }
            faults.control_delay = number(tokens[1], "control delay")?;
            if let Some(j) = tokens.get(2) {
                faults.control_jitter = number(j, "control jitter")?;
            }
            Ok(None)
        }
        "marker_loss" => {
            expect_args(2)?;
            let link = index(tokens[1], "link index")?;
            let p = probability(tokens[2], "marker loss probability")?;
            faults.marker_loss.push((link, p));
            Ok(Some((line_no, FaultIndex::Link, link)))
        }
        "flap" => {
            expect_args(3)?;
            let link = index(tokens[1], "link index")?;
            let (from, until) = window(tokens[2], tokens[3])?;
            faults.flaps.push((link, from, until));
            Ok(Some((line_no, FaultIndex::Link, link)))
        }
        "pause" => {
            expect_args(3)?;
            let core = index(tokens[1], "core index")?;
            let (from, until) = window(tokens[2], tokens[3])?;
            faults.pauses.push((core, from, until));
            Ok(Some((line_no, FaultIndex::Core, core)))
        }
        other => Err(err(format!(
            "unknown fault directive {other:?} (expected control_loss, \
             control_delay, marker_loss, flap, or pause)"
        ))),
    }
}

fn parse_topology(rest: &str, line: usize) -> Result<TopologySpec, ParseScenarioError> {
    let err = |message: String| ParseScenarioError { line, message };
    let mut parts = rest.split_whitespace();
    let kind = parts.next().unwrap_or("");
    let arg = parts.next();
    if parts.next().is_some() {
        return Err(err(format!("too many arguments to `topology {kind}`")));
    }
    let parse_arg = |what: &str| -> Result<usize, ParseScenarioError> {
        let v = arg.ok_or_else(|| err(format!("`topology {kind}` needs a {what}")))?;
        let n: usize = v
            .parse()
            .map_err(|_| err(format!("invalid {what} {v:?}")))?;
        if n < if kind == "chain" { 2 } else { 1 } {
            return Err(err(format!("{what} {n} too small for `topology {kind}`")));
        }
        Ok(n)
    };
    match kind {
        "paper" => Ok(TopologySpec::paper_chain()),
        "chain" => Ok(TopologySpec::chain(parse_arg("core count")?)),
        "parking_lot" => Ok(TopologySpec::parking_lot(parse_arg("hop count")?)),
        "fat_tree" => {
            if arg.is_some() {
                return Err(err("`topology fat_tree` takes no argument".into()));
            }
            Ok(TopologySpec::fat_tree())
        }
        other => Err(err(format!(
            "unknown topology {other:?} (expected paper, chain, parking_lot, or fat_tree)"
        ))),
    }
}

fn parse_flow(rest: &str, line: usize) -> Result<ScenarioFlow, ParseScenarioError> {
    let err = |message: String| ParseScenarioError { line, message };
    let mut path: Option<CorePath> = None;
    let mut weight = 1u32;
    let mut min_rate = 0.0f64;
    let mut start: Option<f64> = None;
    let mut stop: Option<f64> = None;
    let mut activations: Vec<(SimTime, Option<SimTime>)> = Vec::new();
    let mut transport = Transport::default();
    for kv in rest.split_whitespace() {
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| err(format!("expected key=value, got {kv:?}")))?;
        match key {
            "route" => {
                let (a, b) = value
                    .split_once('-')
                    .ok_or_else(|| err(format!("route must be A-B, got {value:?}")))?;
                let a: usize = a
                    .parse()
                    .map_err(|_| err(format!("invalid route start {a:?}")))?;
                let b: usize = b
                    .parse()
                    .map_err(|_| err(format!("invalid route end {b:?}")))?;
                if a >= b {
                    return Err(err(format!("route {a}-{b} out of range (need A < B)")));
                }
                path = Some(CorePath::new((a..=b).collect()));
            }
            "path" => {
                let cores: Vec<usize> = value
                    .split(',')
                    .map(|c| {
                        c.parse()
                            .map_err(|_| err(format!("invalid path core {c:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                if cores.len() < 2 {
                    return Err(err(format!("path needs at least two cores, got {value:?}")));
                }
                path = Some(CorePath::new(cores));
            }
            "weight" => {
                weight = value
                    .parse()
                    .map_err(|_| err(format!("invalid weight {value:?}")))?;
                if weight == 0 {
                    return Err(err("weight must be positive".into()));
                }
            }
            "min_rate" => {
                min_rate = value
                    .parse()
                    .map_err(|_| err(format!("invalid min_rate {value:?}")))?;
                if min_rate < 0.0 {
                    return Err(err("min_rate must be non-negative".into()));
                }
            }
            "start" => {
                start = Some(
                    value
                        .parse()
                        .map_err(|_| err(format!("invalid start {value:?}")))?,
                );
            }
            "stop" => {
                stop = Some(
                    value
                        .parse()
                        .map_err(|_| err(format!("invalid stop {value:?}")))?,
                );
            }
            "active" => {
                let (a, b) = value
                    .split_once("..")
                    .ok_or_else(|| err(format!("active must be START..STOP, got {value:?}")))?;
                let a: f64 = a
                    .parse()
                    .map_err(|_| err(format!("invalid activation start {a:?}")))?;
                let b: Option<f64> = if b.is_empty() {
                    None
                } else {
                    Some(
                        b.parse()
                            .map_err(|_| err(format!("invalid activation stop {b:?}")))?,
                    )
                };
                if let Some(b) = b {
                    if b <= a {
                        return Err(err(format!("activation {a}..{b} ends before it starts")));
                    }
                }
                activations.push((SimTime::from_secs_f64(a), b.map(SimTime::from_secs_f64)));
            }
            "transport" => {
                transport = match value {
                    "limd" => Transport::Limd,
                    "gbn" => Transport::Gbn,
                    "reno" => Transport::Reno,
                    other => {
                        return Err(err(format!(
                            "unknown transport {other:?} (expected limd, gbn, or reno)"
                        )))
                    }
                };
            }
            other => return Err(err(format!("unknown flow attribute {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| err("flow needs route=A-B or path=C0,C1,...".into()))?;
    if let Some(stop) = stop {
        let from = start.unwrap_or(0.0);
        if stop <= from {
            return Err(err(format!("stop {stop} must be after start {from}")));
        }
    }
    if activations.is_empty() {
        activations.push((
            SimTime::from_secs_f64(start.unwrap_or(0.0)),
            stop.map(SimTime::from_secs_f64),
        ));
    } else if start.is_some() || stop.is_some() {
        // Presence, not value, decides the conflict: an explicit
        // `start=0` alongside `active=..` ranges is just as ambiguous
        // as a nonzero one.
        return Err(err(
            "use either start/stop or active=.. ranges, not both".into()
        ));
    }
    Ok(ScenarioFlow {
        path,
        weight,
        min_rate,
        activations,
        transport,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Route;

    const GOOD: &str = "\
# demo
name demo
seed 9
horizon 30
flow route=0-1 weight=2
flow route=0-3 weight=1 start=5 stop=20 min_rate=10
";

    #[test]
    fn parses_a_full_scenario() {
        let s = parse_scenario(GOOD).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.seed, 9);
        assert_eq!(s.horizon, SimTime::from_secs(30));
        assert_eq!(s.flows.len(), 2);
        assert_eq!(s.topology, crate::topology::TopologySpec::paper_chain());
        assert_eq!(s.flows[0].path, Route::new(0, 1).into());
        assert_eq!(s.flows[0].weight, 2);
        assert_eq!(s.flows[1].min_rate, 10.0);
        assert_eq!(
            s.flows[1].activations,
            vec![(SimTime::from_secs(5), Some(SimTime::from_secs(20)))]
        );
    }

    #[test]
    fn transport_attribute_parses_and_defaults() {
        let s = parse_scenario(
            "horizon 10\nflow route=0-1 transport=reno\nflow route=0-1 transport=gbn\n\
             flow route=0-1 transport=limd\nflow route=0-1\n",
        )
        .unwrap();
        assert_eq!(s.flows[0].transport, Transport::Reno);
        assert_eq!(s.flows[1].transport, Transport::Gbn);
        assert_eq!(s.flows[2].transport, Transport::Limd);
        assert_eq!(s.flows[3].transport, Transport::Limd);
        let e = parse_scenario("horizon 10\nflow route=0-1 transport=tcp\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown transport"), "{}", e.message);
    }

    #[test]
    fn shards_directive_selects_the_sharded_engine() {
        let s = parse_scenario("horizon 10\nshards 4\nflow route=0-1\n").unwrap();
        assert_eq!(s.shards, 4);
        // Default is the serial engine.
        let s = parse_scenario("horizon 10\nflow route=0-1\n").unwrap();
        assert_eq!(s.shards, 1);
        for bad in ["shards 0", "shards -1", "shards x"] {
            let e = parse_scenario(&format!("horizon 10\n{bad}\nflow route=0-1\n")).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = parse_scenario("horizon 10 # trailing\n\n# full line\nflow route=0-1\n").unwrap();
        assert_eq!(s.flows.len(), 1);
        assert_eq!(s.flows[0].weight, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_scenario("horizon 10\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        assert!(e.to_string().starts_with("line 2"));
    }

    #[test]
    fn missing_horizon_rejected() {
        let e = parse_scenario("flow route=0-1\n").unwrap_err();
        assert!(e.message.contains("horizon"));
    }

    #[test]
    fn missing_flows_rejected() {
        let e = parse_scenario("horizon 5\n").unwrap_err();
        assert!(e.message.contains("flow"));
    }

    #[test]
    fn bad_route_rejected() {
        for bad in ["route=3-1", "route=0-9", "route=x-1", "route=01"] {
            let e = parse_scenario(&format!("horizon 5\nflow {bad}\n")).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
        }
    }

    #[test]
    fn topology_directive_selects_the_core_network() {
        let s = parse_scenario("topology chain 6\nhorizon 10\nflow route=0-5\n").unwrap();
        assert_eq!(s.topology.core_count, 6);
        assert_eq!(s.flows[0].path.0, vec![0, 1, 2, 3, 4, 5]);
        let s = parse_scenario("topology fat_tree\nhorizon 10\nflow path=0,4,3\n").unwrap();
        assert_eq!(s.topology.name, "fat_tree");
        assert_eq!(s.flows[0].path.0, vec![0, 4, 3]);
    }

    #[test]
    fn paths_are_validated_against_the_topology() {
        // route=0-5 is fine on a 6-core chain but not on the paper chain.
        let e = parse_scenario("horizon 10\nflow route=0-5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"), "{}", e.message);
        // A leaf-to-leaf hop skips the spine: not a fat-tree link.
        let e = parse_scenario("topology fat_tree\nhorizon 10\nflow path=0,3\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("not a link"), "{}", e.message);
    }

    #[test]
    fn bad_topology_directives_rejected() {
        for bad in [
            "topology mesh",
            "topology chain",
            "topology chain x",
            "topology chain 1",
            "topology fat_tree 3",
            "topology paper extra stuff",
        ] {
            let e = parse_scenario(&format!("{bad}\nhorizon 5\nflow route=0-1\n")).unwrap_err();
            assert_eq!(e.line, 1, "{bad}");
        }
        let e = parse_scenario("topology paper\ntopology paper\nhorizon 5\nflow route=0-1\n")
            .unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn inverted_activation_rejected() {
        let e = parse_scenario("horizon 5\nflow route=0-1 start=4 stop=2\n").unwrap_err();
        assert!(e.message.contains("after start"));
    }

    #[test]
    fn active_ranges_support_churn() {
        let s = parse_scenario(
            "horizon 100
flow route=0-1 active=0..60 active=65..
",
        )
        .unwrap();
        assert_eq!(
            s.flows[0].activations,
            vec![
                (SimTime::ZERO, Some(SimTime::from_secs(60))),
                (SimTime::from_secs(65), None),
            ]
        );
    }

    #[test]
    fn active_and_start_stop_are_exclusive() {
        let e = parse_scenario(
            "horizon 100
flow route=0-1 start=5 active=0..60
",
        )
        .unwrap_err();
        assert!(e.message.contains("not both"));
    }

    #[test]
    fn inverted_active_range_rejected() {
        let e = parse_scenario(
            "horizon 100
flow route=0-1 active=60..60
",
        )
        .unwrap_err();
        assert!(e.message.contains("ends before"));
    }

    #[test]
    fn unknown_flow_attribute_rejected() {
        let e = parse_scenario("horizon 5\nflow route=0-1 color=red\n").unwrap_err();
        assert!(e.message.contains("color"));
    }

    #[test]
    fn fault_block_parses_every_directive() {
        let s = parse_scenario(
            "horizon 30
flow route=0-1
fault {
    control_loss  0.2   # comments still work
    control_delay 0.05 0.01
    marker_loss   1 0.5
    flap          0 10 12
    pause         2 20 21
}
",
        )
        .unwrap();
        assert_eq!(s.faults.control_loss, 0.2);
        assert_eq!(s.faults.control_delay, 0.05);
        assert_eq!(s.faults.control_jitter, 0.01);
        assert_eq!(s.faults.marker_loss, vec![(1, 0.5)]);
        assert_eq!(s.faults.flaps, vec![(0, 10.0, 12.0)]);
        assert_eq!(s.faults.pauses, vec![(2, 20.0, 21.0)]);
        assert!(!s.faults.to_plan().is_empty());
    }

    #[test]
    fn scenarios_without_faults_stay_clean() {
        let s = parse_scenario(GOOD).unwrap();
        assert!(s.faults.is_empty());
    }

    #[test]
    fn unclosed_fault_block_rejected() {
        let e =
            parse_scenario("horizon 5\nflow route=0-1\nfault {\ncontrol_loss 0.1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unclosed"), "{}", e.message);
    }

    #[test]
    fn malformed_fault_directives_rejected() {
        for (bad, needle) in [
            ("fault", "expected `fault {`"),
            ("fault on", "expected `fault {`"),
            ("fault {\nwiggle 1 2\n}", "unknown fault directive"),
            ("fault {\ncontrol_loss 1.5\n}", "must be in [0, 1]"),
            ("fault {\ncontrol_loss\n}", "takes 1 argument"),
            ("fault {\nflap 0 12 10\n}", "ends before it starts"),
            ("fault {\npause 0 5 5\n}", "ends before it starts"),
            ("fault {\nmarker_loss x 0.5\n}", "invalid link index"),
        ] {
            let e = parse_scenario(&format!("horizon 5\nflow route=0-1\n{bad}\n")).unwrap_err();
            assert!(e.message.contains(needle), "{bad}: {}", e.message);
        }
    }

    #[test]
    fn churn_block_parses_every_directive() {
        let s = parse_scenario(
            "horizon 60
flow route=0-1 weight=2
churn {
    arrivals 20      # comments still work
    size     50
    rate     100
    route    0-1
    path     1,2,3
    weights  1 2 4
    window   5 30
    linger   2
    shape    1.5
    max_arrivals 500
}
",
        )
        .unwrap();
        let c = s.churn.expect("churn installed");
        assert_eq!(c.arrival_rate, 20.0);
        assert_eq!(c.mean_size_pkts, 50.0);
        assert_eq!(c.nominal_rate_pps, 100.0);
        assert_eq!(c.routes.len(), 2);
        assert_eq!(c.routes[0].0, vec![0, 1]);
        assert_eq!(c.routes[1].0, vec![1, 2, 3]);
        assert_eq!(c.weights, vec![1, 2, 4]);
        assert_eq!(
            c.window,
            Some((SimTime::from_secs(5), SimTime::from_secs(30)))
        );
        assert_eq!(c.linger_secs, 2.0);
        assert_eq!(c.pareto_shape, 1.5);
        assert_eq!(c.max_arrivals, Some(500));
    }

    #[test]
    fn pure_churn_scenarios_need_no_static_flows() {
        let s = parse_scenario(
            "horizon 60
churn {
    arrivals 10
    size 20
    rate 100
    route 0-3
}
",
        )
        .unwrap();
        assert!(s.flows.is_empty());
        let c = s.churn.expect("churn installed");
        assert_eq!(c.window, None, "default window covers the whole run");
        assert_eq!(c.weights, vec![1]);
    }

    #[test]
    fn churn_routes_validated_against_topology() {
        let e =
            parse_scenario("horizon 60\nchurn {\narrivals 10\nsize 20\nrate 100\nroute 0-5\n}\n")
                .unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.message.contains("out of range"), "{}", e.message);
        let e = parse_scenario(
            "topology fat_tree\nhorizon 60\nchurn {\narrivals 10\nsize 20\nrate 100\npath 0,3\n}\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("not a link"), "{}", e.message);
    }

    #[test]
    fn malformed_churn_blocks_rejected() {
        for (bad, needle) in [
            ("churn", "expected `churn {`"),
            ("churn on", "expected `churn {`"),
            ("churn {\narrivals 10\nsize 20\nrate 100\nroute 0-1\n}\nchurn {\narrivals 1\nsize 1\nrate 1\nroute 0-1\n}", "duplicate `churn {`"),
            ("churn {\nwiggle 1\n}", "unknown churn directive"),
            ("churn {\nsize 20\nrate 100\nroute 0-1\n}", "needs an `arrivals`"),
            ("churn {\narrivals 10\nrate 100\nroute 0-1\n}", "needs a mean `size`"),
            ("churn {\narrivals 10\nsize 20\nroute 0-1\n}", "needs a nominal `rate`"),
            ("churn {\narrivals 10\nsize 20\nrate 100\n}", "at least one `route`"),
            ("churn {\narrivals 0\n}", "must be finite and positive"),
            ("churn {\nshape 0.9\n}", "must exceed 1"),
            ("churn {\nwindow 30 5\n}", "ends before it starts"),
            ("churn {\nroute 3-1\n}", "need A < B"),
            ("churn {\nweights 1 0\n}", "invalid weight"),
            ("churn {\nmax_arrivals 0\n}", "must be positive"),
        ] {
            let e = parse_scenario(&format!("horizon 5\nflow route=0-1\n{bad}\n")).unwrap_err();
            assert!(e.message.contains(needle), "{bad}: {}", e.message);
        }
    }

    #[test]
    fn unclosed_churn_block_rejected() {
        let e = parse_scenario("horizon 5\nchurn {\narrivals 10\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unclosed"), "{}", e.message);
    }

    #[test]
    fn fault_targets_validated_against_topology() {
        // The paper chain has 3 core links and 4 cores.
        let e = parse_scenario("horizon 5\nflow route=0-1\nfault {\nflap 3 1 2\n}\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("link 3 out of range"), "{}", e.message);
        let e = parse_scenario("horizon 5\nflow route=0-1\nfault {\npause 4 1 2\n}\n").unwrap_err();
        assert!(e.message.contains("core 4 out of range"), "{}", e.message);
        // A longer chain makes the same indices valid.
        let s = parse_scenario(
            "topology chain 6\nhorizon 5\nflow route=0-5\nfault {\nflap 3 1 2\npause 4 1 2\n}\n",
        )
        .unwrap();
        assert_eq!(s.faults.flaps, vec![(3, 1.0, 2.0)]);
        assert_eq!(s.faults.pauses, vec![(4, 1.0, 2.0)]);
    }
}
