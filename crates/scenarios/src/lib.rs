//! Topologies, flow schedules, and the experiment harness.
//!
//! This crate reconstructs the evaluation section (§4) of the Corelite
//! paper and generalizes it into an open experiment harness:
//!
//! * [`topology`] — the Figure-2 network (a chain of four core routers
//!   with three 4 Mbps / 40 ms congested links, per-flow ingress/egress
//!   edge routers on 4 Mbps / 40 ms access links) plus [`topology::TopologySpec`],
//!   which describes arbitrary core networks: chains of any length, the
//!   parking-lot configuration, and a small leaf–spine fat-tree.
//! * [`discipline`] — the open [`discipline::Discipline`] trait and the
//!   registry of in-tree schemes: `corelite`, `csfq`, `red`, `fred`,
//!   `fifo`, `greedy`. New disciplines plug in without runner changes.
//! * [`schedules`] — the flow sets and activation schedules behind every
//!   evaluation figure (Figures 3–10).
//! * [`runner`] — builds the network for a scenario and discipline, runs
//!   it, and extracts per-flow series plus the discipline's analytic
//!   reference allocation.
//! * [`exec`] — a deterministic parallel executor for experiment sweeps
//!   (results byte-identical to serial execution).
//! * [`fault`] — scenario-level fault injection ([`fault::FaultSpec`])
//!   and the control-loss degradation sweep behind the `faults` binary.
//! * [`report`] — expected-vs-measured tables, convergence summaries, and
//!   CSV export for replotting.
//! * [`plot`] — a dependency-free SVG line plotter; the `figures` binary
//!   writes an image per figure next to the CSV.
//!
//! The `figures` binary regenerates every figure, and `compare` runs the
//! §4.4 summary across every registered discipline:
//!
//! ```text
//! cargo run --release -p scenarios --bin figures -- all
//! cargo run --release -p scenarios --bin compare
//! ```

pub mod churn;
pub mod discipline;
pub mod dsl;
pub mod exec;
pub mod fault;
pub mod plot;
pub mod report;
pub mod runner;
pub mod schedules;
pub mod topology;

pub use discipline::Discipline;
pub use fault::FaultSpec;
pub use runner::{ExperimentResult, ReferenceSpec, Scenario, ScenarioChurn, ScenarioFlow};
pub use schedules::{
    fig3_4, fig5_6, fig7_8, fig9_10, mixed_transports, mixed_transports_fat_tree, PaperFigure,
};
pub use topology::{CorePath, Route, TopologySpec};
