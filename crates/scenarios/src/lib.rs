//! Paper topologies, flow schedules, and the experiment harness.
//!
//! This crate reconstructs the evaluation section (§4) of the Corelite
//! paper:
//!
//! * [`topology`] — the Figure-2 network: a chain of four core routers
//!   with three 4 Mbps / 40 ms congested links, per-flow ingress/egress
//!   edge routers on 4 Mbps / 40 ms access links.
//! * [`schedules`] — the flow sets and activation schedules behind every
//!   evaluation figure (Figures 3–10).
//! * [`runner`] — builds the network for a chosen discipline (Corelite or
//!   weighted CSFQ), runs it, and extracts per-flow series.
//! * [`report`] — expected-vs-measured tables, convergence summaries, and
//!   CSV export for replotting.
//! * [`plot`] — a dependency-free SVG line plotter; the `figures` binary
//!   writes an image per figure next to the CSV.
//!
//! The `figures` binary regenerates every figure:
//!
//! ```text
//! cargo run --release -p scenarios --bin figures -- all
//! ```

pub mod dsl;
pub mod plot;
pub mod report;
pub mod runner;
pub mod schedules;
pub mod topology;

pub use runner::{Discipline, ExperimentResult, Scenario, ScenarioFlow};
pub use schedules::{fig3_4, fig5_6, fig7_8, fig9_10, PaperFigure};
pub use topology::Route;
