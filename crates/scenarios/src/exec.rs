//! A deterministic parallel experiment executor.
//!
//! Experiment sweeps (seed sensitivity, figure regeneration, the §4.4
//! comparison) are embarrassingly parallel: every run owns its own
//! seeded RNG streams and shares nothing, so running them on worker
//! threads changes wall-clock time and *nothing else*. [`run_parallel`]
//! preserves input order and produces results identical to
//! [`run_serial`] — a property the determinism regression test checks
//! byte-for-byte — using only `std::thread` scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `work` over every job on a pool of scoped worker threads and
/// returns the results in input order.
///
/// The worker count is the available hardware parallelism, capped by the
/// job count. Jobs are claimed from a shared counter, so scheduling is
/// dynamic, but because each result lands in its input slot the output
/// is independent of the interleaving.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_parallel<T, R, F>(jobs: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = jobs.len();
    if n <= 1 {
        return jobs.into_iter().map(work).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                let result = work(job);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("job completed without a result")
        })
        .collect()
}

/// The single-threaded twin of [`run_parallel`]: same signature, same
/// results, one job at a time. The `--serial` escape hatch and the
/// baseline the determinism regression test compares against.
pub fn run_serial<T, R, F>(jobs: Vec<T>, work: F) -> Vec<R>
where
    F: Fn(T) -> R,
{
    jobs.into_iter().map(work).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order_and_values() {
        let jobs: Vec<u64> = (0..57).collect();
        let work = |j: u64| j.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7;
        let serial = run_serial(jobs.clone(), work);
        let parallel = run_parallel(jobs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_job_lists_work() {
        assert_eq!(run_parallel(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(run_parallel(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn non_clone_jobs_and_results_are_supported() {
        let jobs: Vec<String> = (0..16).map(|i| format!("job-{i}")).collect();
        let out = run_parallel(jobs, |j| j + "-done");
        assert_eq!(out[3], "job-3-done");
        assert_eq!(out.len(), 16);
    }

    // std::thread::scope re-raises with its own payload, so match the
    // generic message rather than the original one.
    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panics_propagate() {
        run_parallel(vec![1, 2, 3], |j: i32| {
            if j == 2 {
                panic!("boom");
            }
            j
        });
    }
}
