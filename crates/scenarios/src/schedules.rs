//! The flow sets and activation schedules behind every evaluation figure.

use corelite::CoreliteConfig;
use csfq::CsfqConfig;
use netsim::Transport;
use sim_core::time::SimTime;

use crate::discipline::{Corelite, Csfq, Discipline};
use crate::runner::{Scenario, ScenarioFlow};
use crate::topology::{Route, TopologySpec};

/// §4.1 (Figures 3 and 4): 20 flows with the paper's weights; flows 1, 9,
/// 10, 11 and 16 live only during `[250 s, 500 s)`, all others during
/// `[0 s, 750 s)`. Expected allotted rates per unit weight: 33.33 pkt/s
/// while 15 units of weight share each link, 25 pkt/s while all 20 do.
pub fn fig3_4(seed: u64) -> Scenario {
    let late = [1, 9, 10, 11, 16];
    let flows = (1..=20)
        .map(|i| ScenarioFlow {
            transport: Default::default(),
            path: Route::of_paper_flow(i).into(),
            weight: Route::paper_weight(i),
            min_rate: 0.0,
            activations: if late.contains(&i) {
                vec![(SimTime::from_secs(250), Some(SimTime::from_secs(500)))]
            } else {
                vec![(SimTime::ZERO, Some(SimTime::from_secs(750)))]
            },
        })
        .collect();
    Scenario::paper(
        "fig3_4_network_dynamics",
        flows,
        SimTime::from_secs(800),
        seed,
    )
}

/// §4.2 (Figures 5 and 6): flows 1–10 of the paper topology start
/// simultaneously with weights `⌈i/2⌉` (1, 1, 2, 2, 3, 3, 4, 4, 5, 5).
/// The bottleneck is C1–C2 with total weight 30 ⇒ 16.67 pkt/s per unit
/// weight.
pub fn fig5_6(seed: u64) -> Scenario {
    let flows = (1..=10)
        .map(|i| ScenarioFlow {
            transport: Default::default(),
            path: Route::of_paper_flow(i).into(),
            weight: (i as u32).div_ceil(2),
            min_rate: 0.0,
            activations: vec![(SimTime::ZERO, None)],
        })
        .collect();
    Scenario::paper(
        "fig5_6_simultaneous_start",
        flows,
        SimTime::from_secs(80),
        seed,
    )
}

/// The §4.3 weights: flows 1, 11, 16 have weight 1; flows 5, 10, 15
/// weight 3; all others weight 2.
fn staggered_weight(i: usize) -> u32 {
    match i {
        1 | 11 | 16 => 1,
        5 | 10 | 15 => 3,
        _ => 2,
    }
}

/// §4.3 (Figures 7 and 8): 20 flows enter one second apart in ascending
/// order and stay for the rest of the run.
pub fn fig7_8(seed: u64) -> Scenario {
    let flows = (1..=20)
        .map(|i| ScenarioFlow {
            transport: Default::default(),
            path: Route::of_paper_flow(i).into(),
            weight: staggered_weight(i),
            min_rate: 0.0,
            activations: vec![(SimTime::from_secs((i - 1) as u64), None)],
        })
        .collect();
    Scenario::paper(
        "fig7_8_staggered_start",
        flows,
        SimTime::from_secs(80),
        seed,
    )
}

/// §4.3 (Figures 9 and 10): flows start one second apart, live for 60
/// seconds, stop one second apart, and restart 5 seconds after stopping —
/// flows are simultaneously entering and leaving during `[65 s, 80 s]`.
pub fn fig9_10(seed: u64) -> Scenario {
    let flows = (1..=20)
        .map(|i| {
            let start = (i - 1) as u64;
            let stop = start + 60;
            let restart = stop + 5;
            ScenarioFlow {
                transport: Default::default(),
                path: Route::of_paper_flow(i).into(),
                weight: staggered_weight(i),
                min_rate: 0.0,
                activations: vec![
                    (SimTime::from_secs(start), Some(SimTime::from_secs(stop))),
                    (SimTime::from_secs(restart), None),
                ],
            }
        })
        .collect();
    Scenario::paper("fig9_10_churn", flows, SimTime::from_secs(160), seed)
}

/// Closed-loop-vs-open-loop fairness on the paper chain: the ten
/// fig5/6 flows (weights `⌈i/2⌉`), but every even-numbered flow runs
/// the ack-clocked Reno go-back-N transport while odd ones keep the
/// paper's open-loop LIMD edge. The weighted max-min reference is
/// unchanged — 16.67 pkt/s per unit weight at the C1–C2 bottleneck —
/// so any gap between cohorts is the transports', not the topology's.
pub fn mixed_transports(seed: u64) -> Scenario {
    let flows = (1..=10)
        .map(|i| ScenarioFlow {
            path: Route::of_paper_flow(i).into(),
            weight: (i as u32).div_ceil(2),
            min_rate: 0.0,
            activations: vec![(SimTime::ZERO, None)],
            transport: if i % 2 == 0 {
                Transport::Reno
            } else {
                Transport::Limd
            },
        })
        .collect();
    Scenario::paper(
        "mixed_transports_chain",
        flows,
        SimTime::from_secs(80),
        seed,
    )
}

/// All three transports contending on the 4×2 fat-tree: leaf 0 sends
/// to each other leaf through spine 0, leaf 1 to each other leaf
/// through spine 1 — so each group of three flows shares its
/// leaf-to-spine uplink (weights 1, 2, 3 ⇒ 83.3/166.7/250 pkt/s
/// shares), and every group mixes all three transports (rotated
/// between groups so each transport sees each weight). The non-chain
/// case for mixed-transport fairness.
pub fn mixed_transports_fat_tree(seed: u64) -> Scenario {
    let transports = [Transport::Limd, Transport::Gbn, Transport::Reno];
    let groups = [(0usize, 0usize, 0usize), (1, 1, 1)]; // (src leaf, spine, transport rotation)
    let flows = groups
        .iter()
        .flat_map(|&(src, spine, rot)| {
            (0..TopologySpec::FAT_TREE_LEAVES)
                .filter(move |&dst| dst != src)
                .enumerate()
                .map(move |(k, dst)| ScenarioFlow {
                    path: TopologySpec::fat_tree_path(src, dst, spine),
                    weight: k as u32 + 1,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                    transport: transports[(k + rot) % transports.len()],
                })
        })
        .collect();
    Scenario::on(
        TopologySpec::fat_tree(),
        "mixed_transports_fat_tree",
        flows,
        SimTime::from_secs(80),
        seed,
    )
}

/// One evaluation figure of the paper (Figures 3–10; 1 and 2 are
/// diagrams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperFigure {
    /// Corelite instantaneous rate under network dynamics (§4.1).
    Fig3,
    /// Corelite cumulative service under network dynamics (§4.1).
    Fig4,
    /// Corelite instantaneous rate, simultaneous start (§4.2).
    Fig5,
    /// CSFQ instantaneous rate, simultaneous start (§4.2).
    Fig6,
    /// Corelite instantaneous rate, staggered start (§4.3).
    Fig7,
    /// CSFQ instantaneous rate, staggered start (§4.3).
    Fig8,
    /// Corelite instantaneous rate under churn (§4.3).
    Fig9,
    /// CSFQ instantaneous rate under churn (§4.3).
    Fig10,
}

impl PaperFigure {
    /// All evaluation figures in paper order.
    pub const ALL: [PaperFigure; 8] = [
        PaperFigure::Fig3,
        PaperFigure::Fig4,
        PaperFigure::Fig5,
        PaperFigure::Fig6,
        PaperFigure::Fig7,
        PaperFigure::Fig8,
        PaperFigure::Fig9,
        PaperFigure::Fig10,
    ];

    /// Lowercase identifier (`"fig3"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            PaperFigure::Fig3 => "fig3",
            PaperFigure::Fig4 => "fig4",
            PaperFigure::Fig5 => "fig5",
            PaperFigure::Fig6 => "fig6",
            PaperFigure::Fig7 => "fig7",
            PaperFigure::Fig8 => "fig8",
            PaperFigure::Fig9 => "fig9",
            PaperFigure::Fig10 => "fig10",
        }
    }

    /// Parses `"fig3"`-style names.
    pub fn from_name(name: &str) -> Option<PaperFigure> {
        PaperFigure::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The scenario this figure runs.
    pub fn scenario(&self, seed: u64) -> Scenario {
        match self {
            PaperFigure::Fig3 | PaperFigure::Fig4 => fig3_4(seed),
            PaperFigure::Fig5 | PaperFigure::Fig6 => fig5_6(seed),
            PaperFigure::Fig7 | PaperFigure::Fig8 => fig7_8(seed),
            PaperFigure::Fig9 | PaperFigure::Fig10 => fig9_10(seed),
        }
    }

    /// The discipline this figure plots, with the paper's default
    /// parameters.
    pub fn discipline(&self) -> Box<dyn Discipline> {
        match self {
            PaperFigure::Fig3
            | PaperFigure::Fig4
            | PaperFigure::Fig5
            | PaperFigure::Fig7
            | PaperFigure::Fig9 => Box::new(Corelite::new(CoreliteConfig::default())),
            PaperFigure::Fig6 | PaperFigure::Fig8 | PaperFigure::Fig10 => {
                Box::new(Csfq::new(CsfqConfig::default()))
            }
        }
    }

    /// True when the figure plots cumulative service rather than
    /// instantaneous rate.
    pub fn is_cumulative(&self) -> bool {
        matches!(self, PaperFigure::Fig4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_schedule_matches_paper() {
        let s = fig3_4(1);
        assert_eq!(s.flows.len(), 20);
        // Flow 9 (index 8) lives only in [250, 500).
        assert_eq!(
            s.flows[8].activations,
            vec![(SimTime::from_secs(250), Some(SimTime::from_secs(500)))]
        );
        assert_eq!(s.active_at(SimTime::from_secs(100)).len(), 15);
        assert_eq!(s.active_at(SimTime::from_secs(300)).len(), 20);
        assert_eq!(s.active_at(SimTime::from_secs(600)).len(), 15);
        assert_eq!(s.active_at(SimTime::from_secs(760)).len(), 0);
    }

    #[test]
    fn fig3_expected_rates_match_paper_numbers() {
        let s = fig3_4(1);
        // All flows active: 25 pkt/s per unit weight.
        let mid = s.expected_rates_at(SimTime::from_secs(300));
        assert!((mid[4] - 75.0).abs() < 1e-6, "flow 5 {}", mid[4]);
        assert!((mid[0] - 25.0).abs() < 1e-6, "flow 1 {}", mid[0]);
        assert!((mid[1] - 50.0).abs() < 1e-6, "flow 2 {}", mid[1]);
        // Subset active: 33.33 pkt/s per unit weight.
        let early = s.expected_rates_at(SimTime::from_secs(100));
        assert!((early[4] - 99.999).abs() < 0.01, "flow 5 {}", early[4]);
        assert!((early[1] - 66.666).abs() < 0.01, "flow 2 {}", early[1]);
        assert_eq!(early[0], 0.0);
    }

    #[test]
    fn fig5_weights_are_ceil_i_over_2() {
        let s = fig5_6(1);
        let weights: Vec<u32> = s.flows.iter().map(|f| f.weight).collect();
        assert_eq!(weights, vec![1, 1, 2, 2, 3, 3, 4, 4, 5, 5]);
        // Bottleneck C1-C2 (weight 30): 16.67 per unit weight.
        let expect = s.expected_rates_at(SimTime::from_secs(10));
        assert!((expect[9] - 5.0 * 500.0 / 30.0).abs() < 1e-6);
        assert!((expect[6] - 4.0 * 500.0 / 30.0).abs() < 1e-6);
    }

    #[test]
    fn fig7_flows_start_one_second_apart() {
        let s = fig7_8(1);
        assert_eq!(s.active_at(SimTime::from_secs_f64(0.5)).len(), 1);
        assert_eq!(s.active_at(SimTime::from_secs_f64(10.5)).len(), 11);
        assert_eq!(s.active_at(SimTime::from_secs(50)).len(), 20);
        assert_eq!(s.flows[9].weight, 3); // §4.3: flow 10 has weight 3
    }

    #[test]
    fn fig9_flows_restart_after_five_seconds() {
        let s = fig9_10(1);
        // Flow 1: [0, 60) then [65, ∞).
        assert_eq!(
            s.flows[0].activations,
            vec![
                (SimTime::ZERO, Some(SimTime::from_secs(60))),
                (SimTime::from_secs(65), None)
            ]
        );
        // At t = 62.5 flow 1 is off but flow 20 (started t=19, stops t=79)
        // is still on.
        let active = s.active_at(SimTime::from_secs_f64(62.5));
        assert!(!active.contains(&0));
        assert!(active.contains(&19));
    }

    #[test]
    fn figure_lookup_round_trips() {
        for f in PaperFigure::ALL {
            assert_eq!(PaperFigure::from_name(f.name()), Some(f));
        }
        assert_eq!(PaperFigure::from_name("fig99"), None);
        assert!(PaperFigure::Fig4.is_cumulative());
        assert!(!PaperFigure::Fig3.is_cumulative());
    }

    #[test]
    fn disciplines_alternate_corelite_csfq() {
        assert_eq!(PaperFigure::Fig5.discipline().name(), "corelite");
        assert_eq!(PaperFigure::Fig6.discipline().name(), "csfq");
        assert_eq!(PaperFigure::Fig9.discipline().name(), "corelite");
        assert_eq!(PaperFigure::Fig10.discipline().name(), "csfq");
    }
}
