//! Microbenchmarks of the discrete-event substrate: event queue, RNG
//! streams, the time-weighted queue average, the exponential rate
//! estimator, and end-to-end simulator throughput (the paper-chain
//! scenario used by the CI bench smoke gate).

use bench::{black_box, compress, run_checked, Runner};
use sim_core::event::EventQueue;
use sim_core::rng::DetRng;
use sim_core::stats::{ExpAvg, TimeWeightedMean};
use sim_core::time::{SimDuration, SimTime};

fn bench_event_queue(runner: &mut Runner) {
    runner.bench("event_queue/push_pop_interleaved_1k", || {
        let mut q = EventQueue::with_capacity(1024);
        // A sliding window of pending events, like a busy link.
        for i in 0..1_000u64 {
            q.push(SimTime::from_nanos(i * 997 % 50_000), i);
            if i % 2 == 1 {
                black_box(q.pop());
            }
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
    });
    runner.bench("event_queue/push_pop_fifo_ties_1k", || {
        let t = SimTime::from_secs(1);
        let mut q = EventQueue::with_capacity(1024);
        for i in 0..1_000u64 {
            q.push(t, i);
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
    });
}

fn bench_rng(runner: &mut Runner) {
    let mut rng = DetRng::new(7);
    runner.bench("rng/bernoulli_10k", || {
        let mut hits = 0u32;
        for _ in 0..10_000 {
            hits += u32::from(rng.bernoulli(black_box(0.3)));
        }
        black_box(hits)
    });
    runner.bench("rng/stream_derivation", || {
        black_box(DetRng::stream(black_box(42), "core-router-3"))
    });
}

fn bench_stats(runner: &mut Runner) {
    runner.bench("stats/time_weighted_mean_10k_updates", || {
        let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
        for i in 1..10_000u64 {
            m.set(SimTime::from_nanos(i * 1_000), (i % 40) as f64);
        }
        black_box(m.mean(SimTime::from_millis(10)))
    });
    runner.bench("stats/exp_avg_10k_observations", || {
        let mut e = ExpAvg::new(SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            now += SimDuration::from_micros(500);
            black_box(e.observe(now, 1.0));
        }
        black_box(e.rate())
    });
}

fn bench_simulator_scaling(runner: &mut Runner) {
    use corelite::CoreliteConfig;
    use scenarios::discipline::Corelite;
    use scenarios::runner::{Scenario, ScenarioFlow};
    use scenarios::topology::Route;

    for &flows in &[5usize, 20, 50] {
        let scenario = Scenario::paper(
            "scaling",
            (0..flows)
                .map(|i| ScenarioFlow {
                    transport: Default::default(),
                    path: Route::new(i % 3, i % 3 + 1).into(),
                    weight: (i % 3 + 1) as u32,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                })
                .collect(),
            SimTime::from_secs(10),
            1,
        );
        let discipline = Corelite::new(CoreliteConfig::default());
        runner.bench_events(
            &format!("simulator_scaling/corelite_{flows}_flows_10s"),
            || {
                let result = scenario.run(&discipline);
                result.report.events_processed
            },
        );
    }
}

/// End-to-end throughput on the paper's §4.2 chain topology, compressed
/// to 20 simulated seconds. This is the workload the CI bench smoke step
/// gates against `BENCH_4.json`.
fn bench_paper_chain(runner: &mut Runner) {
    use scenarios::fig3_4;
    use scenarios::PaperFigure;

    let scenario = compress(fig3_4(1), 20);
    let discipline = PaperFigure::Fig3.discipline();
    runner.bench_events("engine/paper_chain_20s", || {
        run_checked(&scenario, discipline.as_ref())
            .report
            .events_processed
    });
}

/// End-to-end throughput on a k = 8 two-tier fat-tree (8 leaves × 4
/// spines, 16 cross flows), 20 simulated seconds — the wide-fan-out
/// counterpart to the chain workload above. The scenario is spelled out
/// from public primitives (rather than `Scenario::fat_tree_k_mix`, which
/// it mirrors) so this harness file also compiles at the baseline commit
/// when capturing the `before` side of a `BENCH_*.json` (EXPERIMENTS.md).
fn bench_fat_tree(runner: &mut Runner) {
    use corelite::CoreliteConfig;
    use scenarios::discipline::Corelite;
    use scenarios::runner::{Scenario, ScenarioFlow};
    use scenarios::topology::{CorePath, TopologySpec};

    const LEAVES: usize = 8;
    const SPINES: usize = 4;
    let mut links = Vec::new();
    for leaf in 0..LEAVES {
        for spine in 0..SPINES {
            links.push((leaf, LEAVES + spine));
            links.push((LEAVES + spine, leaf));
        }
    }
    let topo = TopologySpec {
        name: "fat_tree_k",
        core_count: LEAVES + SPINES,
        links,
    };
    let flows = (0..2 * LEAVES)
        .map(|i| {
            let src = i % LEAVES;
            let dst = (src + 1 + i / LEAVES) % LEAVES;
            ScenarioFlow::best_effort(
                CorePath::new(vec![src, LEAVES + i % SPINES, dst]),
                (i % 3 + 1) as u32,
                SimTime::ZERO,
            )
        })
        .collect();
    let scenario = Scenario::on(topo, "fat_tree_k_mix", flows, SimTime::from_secs(20), 1);
    let discipline = Corelite::new(CoreliteConfig::default());
    runner.bench_events("engine/fat_tree_k8_20s", || {
        let result = scenario.run(&discipline);
        result.report.events_processed
    });
}

/// The sharded-engine headline workload: a k = 16 two-tier fat-tree
/// (16 leaves × 8 spines, 32 long-lived cross flows) carrying a
/// 100 000-arrival churn process, serial and at 2/4/8 shards. The
/// sharded rows report the same merged event total as the serial row
/// (the identity suite pins byte-equality) plus the per-shard event
/// split, so the trajectory records both aggregate throughput and how
/// evenly the delay-cut partitioner spread the load. Speedup claims
/// only mean something on multi-core capture machines; EXPERIMENTS.md
/// §BENCH_9 records the protocol and the single-core analysis.
fn bench_fat_tree_k16(runner: &mut Runner) {
    use corelite::CoreliteConfig;
    use scenarios::discipline::Corelite;
    use scenarios::runner::Scenario;

    let scenario = Scenario::fat_tree_k16_100k(SimTime::from_secs(20), 1);
    let discipline = Corelite::new(CoreliteConfig::default());
    runner.bench_events("engine/fat_tree_k16_100k", || {
        let result = scenario.run(&discipline);
        result.report.events_processed
    });
    for shards in [2usize, 4, 8] {
        runner.bench_events_sharded(
            &format!("engine/fat_tree_k16_100k_sharded{shards}"),
            shards as u64,
            || {
                let (result, per_shard) = scenario.run_sharded(&discipline, shards);
                (result.report.events_processed, per_shard)
            },
        );
    }
}

/// Flow-lifecycle throughput: 100 k Poisson arrivals with Pareto
/// lifetimes through the recycled flow table. ForwardLogic ingresses
/// emit nothing, so every event is churn machinery — arrival scheduling,
/// slot allocation and recycling, lifecycle timers, linger retirement —
/// the same shape as the million-arrival acceptance test in
/// `netsim/tests/churn.rs`, scaled to a bench iteration.
fn bench_churn(runner: &mut Runner) {
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use netsim::ChurnSpec;

    runner.bench_events("engine/churn_100k", || {
        let mut b = TopologyBuilder::new(7);
        let e = b.node("ingress", |_| Box::new(ForwardLogic));
        let x = b.node("egress", |_| Box::new(ForwardLogic));
        b.link(
            e,
            x,
            LinkSpec::new(40_000_000, SimDuration::from_millis(5), 400),
        );
        // The cap ends the process: exactly 100 k arrivals (~5 s at
        // 20 k/s), then the horizon covers the Pareto tail's drain.
        b.churn(
            ChurnSpec::new(20_000.0, 10.0, 1_000.0)
                .route(vec![e, x])
                .window(SimTime::ZERO, SimTime::from_secs(20))
                .linger(SimDuration::from_millis(100))
                .max_arrivals(100_000),
        );
        let end = SimTime::from_secs(10);
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end).events_processed
    });
}

fn main() {
    let mut runner = Runner::from_args("engine");
    bench_event_queue(&mut runner);
    bench_rng(&mut runner);
    bench_stats(&mut runner);
    bench_simulator_scaling(&mut runner);
    bench_paper_chain(&mut runner);
    bench_fat_tree(&mut runner);
    bench_fat_tree_k16(&mut runner);
    bench_churn(&mut runner);
    std::process::exit(runner.finish());
}
