//! Microbenchmarks of the discrete-event substrate: event queue, RNG
//! streams, the time-weighted queue average, and the exponential rate
//! estimator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_core::event::EventQueue;
use sim_core::rng::DetRng;
use sim_core::stats::{ExpAvg, TimeWeightedMean};
use sim_core::time::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_interleaved_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            // A sliding window of pending events, like a busy link.
            for i in 0..1_000u64 {
                q.push(SimTime::from_nanos(i * 997 % 50_000), i);
                if i % 2 == 1 {
                    black_box(q.pop());
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
    group.bench_function("push_pop_fifo_ties_1k", |b| {
        let t = SimTime::from_secs(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1_000u64 {
                q.push(t, i);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("bernoulli_10k", |b| {
        let mut rng = DetRng::new(7);
        b.iter(|| {
            let mut hits = 0u32;
            for _ in 0..10_000 {
                hits += u32::from(rng.bernoulli(black_box(0.3)));
            }
            black_box(hits)
        });
    });
    group.bench_function("stream_derivation", |b| {
        b.iter(|| black_box(DetRng::stream(black_box(42), "core-router-3")));
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.bench_function("time_weighted_mean_10k_updates", |b| {
        b.iter(|| {
            let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
            for i in 1..10_000u64 {
                m.set(SimTime::from_nanos(i * 1_000), (i % 40) as f64);
            }
            black_box(m.mean(SimTime::from_millis(10)))
        });
    });
    group.bench_function("exp_avg_10k_observations", |b| {
        b.iter(|| {
            let mut e = ExpAvg::new(SimDuration::from_millis(100));
            let mut now = SimTime::ZERO;
            for _ in 0..10_000 {
                now += SimDuration::from_micros(500);
                black_box(e.observe(now, 1.0));
            }
            black_box(e.rate())
        });
    });
    group.finish();
}

fn bench_simulator_scaling(c: &mut Criterion) {
    use corelite::CoreliteConfig;
    use scenarios::runner::{Discipline, Scenario, ScenarioFlow};
    use scenarios::topology::Route;

    let mut group = c.benchmark_group("simulator_scaling");
    group.sample_size(10);
    for &flows in &[5usize, 20, 50] {
        let scenario = Scenario {
            name: "scaling",
            flows: (0..flows)
                .map(|i| ScenarioFlow {
                    route: Route::new(i % 3, i % 3 + 1),
                    weight: (i % 3 + 1) as u32,
                    min_rate: 0.0,
                    activations: vec![(SimTime::ZERO, None)],
                })
                .collect(),
            horizon: SimTime::from_secs(10),
            seed: 1,
        };
        let discipline = Discipline::Corelite(CoreliteConfig::default());
        group.bench_function(format!("corelite_{flows}_flows_10s"), |b| {
            b.iter(|| {
                let result = scenario.run(&discipline);
                black_box(result.report.events_processed)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_stats,
    bench_simulator_scaling
);
criterion_main!(benches);
