//! Microbenchmarks of the per-packet mechanisms under study, plus the
//! ablation axes DESIGN.md calls out (marker-cache vs stateless selector,
//! `k = 0` vs `k > 0`, epoch sizes). These quantify the *cost* of each
//! design choice; the ablation *quality* tables come from
//! `cargo run --release -p scenarios --bin ablations`.

use bench::{black_box, compress, run_checked, Runner};
use corelite::{
    marker_feedback_count, CoreliteConfig, MarkerCache, SelectorKind, StatelessSelector,
};
use csfq::FairShareEstimator;
use fairness::maxmin::MaxMinProblem;
use netsim::packet::Marker;
use netsim::{FlowId, NodeId};
use scenarios::discipline::Corelite;
use scenarios::{fig3_4, fig5_6};
use sim_core::rng::DetRng;
use sim_core::time::{SimDuration, SimTime};

fn marker(flow: usize, rn: f64) -> Marker {
    Marker {
        flow: FlowId::from_index(flow),
        edge: NodeId::from_index(0),
        normalized_rate: rn,
    }
}

fn bench_selectors(runner: &mut Runner) {
    let mut cache = MarkerCache::new(512);
    runner.bench("selector/cache_push_1k", || {
        for i in 0..1_000 {
            cache.push(marker(i % 20, (i % 50) as f64));
        }
    });
    let mut cache = MarkerCache::new(512);
    for i in 0..512 {
        cache.push(marker(i % 20, (i % 50) as f64));
    }
    let mut rng = DetRng::new(3);
    runner.bench("selector/cache_select_16_of_512", || {
        black_box(cache.select(16, &mut rng))
    });
    let mut sel = StatelessSelector::new(0.1);
    let mut rng = DetRng::new(5);
    sel.on_epoch(10.0);
    runner.bench("selector/stateless_on_marker_1k", || {
        let mut sent = 0u32;
        for i in 0..1_000 {
            sent += u32::from(sel.on_marker(&marker(i % 20, (i % 50) as f64), &mut rng));
        }
        black_box(sent)
    });
}

fn bench_congestion_and_csfq(runner: &mut Runner) {
    runner.bench("per_packet/marker_feedback_count", || {
        black_box(marker_feedback_count(
            black_box(17.3),
            black_box(8.0),
            black_box(50.0),
            black_box(0.005),
        ))
    });
    runner.bench("per_packet/csfq_arrival_accept_1k", || {
        let mut est = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for i in 0..1_000u64 {
            now += SimDuration::from_micros(900);
            let p = est.on_arrival(now, (i % 60) as f64);
            if p < 0.5 {
                black_box(est.on_accept(now, (i % 60) as f64));
            }
        }
    });
}

fn bench_maxmin(runner: &mut Runner) {
    runner.bench("maxmin/paper_20_flows", || {
        let mut p = MaxMinProblem::new();
        let links: Vec<_> = (0..3).map(|_| p.link(500.0)).collect();
        for i in 0..20usize {
            let span = i % 3;
            p.flow((i % 3 + 1) as f64, links[span..span + 1].to_vec());
        }
        black_box(p.solve())
    });
    runner.bench("maxmin/large_200_flows_50_links", || {
        let mut p = MaxMinProblem::new();
        let links: Vec<_> = (0..50).map(|i| p.link(100.0 + i as f64)).collect();
        for i in 0..200usize {
            let a = i % 50;
            let b2 = (i * 7 + 3) % 50;
            let (lo, hi) = if a <= b2 { (a, b2) } else { (b2, a) };
            p.flow((i % 5 + 1) as f64, links[lo..=hi].to_vec());
        }
        black_box(p.solve())
    });
}

/// Ablation cost axis: how the design choices change simulation cost on
/// the §4.2 workload (quality tables live in the `ablations` binary).
fn bench_ablation_cost(runner: &mut Runner) {
    let cases: Vec<(&str, CoreliteConfig)> = vec![
        ("stateless", CoreliteConfig::default()),
        (
            "cache256",
            CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 256 }),
        ),
        ("k_zero", CoreliteConfig::default().with_correction_k(0.0)),
        (
            "epoch_50ms",
            CoreliteConfig {
                core_epoch: SimDuration::from_millis(50),
                ..CoreliteConfig::default()
            },
        ),
    ];
    for (name, cfg) in cases {
        let scenario = compress(fig5_6(1), 15);
        let discipline = Corelite::new(cfg);
        runner.bench(&format!("ablation_cost/{name}"), || {
            run_checked(&scenario, &discipline)
        });
    }
    // The 20-flow dynamics workload as a heavier end-to-end cost probe.
    let scenario = compress(fig3_4(1), 15);
    let discipline = Corelite::new(CoreliteConfig::default());
    runner.bench("ablation_cost/fig3_topology_15s", || {
        run_checked(&scenario, &discipline)
    });
}

fn main() {
    let mut runner = Runner::from_args("mechanisms");
    bench_selectors(&mut runner);
    bench_congestion_and_csfq(&mut runner);
    bench_maxmin(&mut runner);
    bench_ablation_cost(&mut runner);
    std::process::exit(runner.finish());
}
