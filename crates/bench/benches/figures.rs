//! One benchmark per evaluation figure of the paper (Figures 3–10).
//!
//! Each bench runs a time-compressed variant of the figure's scenario
//! under the figure's discipline and reports wall-clock time per
//! simulated run. The full-length data behind each figure is regenerated
//! by `cargo run --release -p scenarios --bin figures -- all`; the
//! benches here keep the workloads executable under Criterion's
//! repetition budget while still covering every figure's code path
//! (topology, schedule, discipline, selector).

use bench::{compress, run_checked};
use criterion::{criterion_group, criterion_main, Criterion};
use scenarios::PaperFigure;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for figure in PaperFigure::ALL {
        // Figures 3/4 simulate 800 s in the paper; compress every figure
        // to 20 simulated seconds for benchmarking.
        let scenario = compress(figure.scenario(1), 20);
        let discipline = figure.discipline();
        group.bench_function(figure.name(), |b| {
            b.iter(|| run_checked(&scenario, &discipline));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
