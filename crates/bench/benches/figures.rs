//! One benchmark per evaluation figure of the paper (Figures 3–10).
//!
//! Each bench runs a time-compressed variant of the figure's scenario
//! under the figure's discipline and reports wall-clock time per
//! simulated run. The full-length data behind each figure is regenerated
//! by `cargo run --release -p scenarios --bin figures -- all`; the
//! benches here keep the workloads short while still covering every
//! figure's code path (topology, schedule, discipline, selector).

use bench::{compress, run_checked, Runner};
use scenarios::PaperFigure;

fn main() {
    let runner = Runner::from_args();
    for figure in PaperFigure::ALL {
        // Figures 3/4 simulate 800 s in the paper; compress every figure
        // to 20 simulated seconds for benchmarking.
        let scenario = compress(figure.scenario(1), 20);
        let discipline = figure.discipline();
        runner.bench(figure.name(), || {
            run_checked(&scenario, discipline.as_ref())
        });
    }
}
