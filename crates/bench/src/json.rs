//! A minimal JSON reader/writer for the bench trajectory files.
//!
//! The workspace is dependency-free (the container cannot reach
//! crates.io), so the `BENCH_*.json` baselines are parsed with this
//! hand-rolled subset parser: objects, arrays, strings (with the common
//! escapes), numbers, booleans and null. It is not a general-purpose
//! JSON library — it exists so the bench harness can read its own
//! output back for regression gating.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted (BTreeMap) for deterministic iteration.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses `src` as a single JSON value (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected `{:?}` at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` as a JSON number.
///
/// # Panics
///
/// Panics on NaN or infinity (not representable in JSON).
pub fn number(v: f64) -> String {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .expect("valid JSON parses");
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trips_escaped_strings() {
        let s = "a\"b\\c\nd";
        let v = parse(&format!("{{\"k\": {}}}", escape(s))).expect("escaped string parses");
        assert_eq!(v.get("k").and_then(Value::as_str), Some(s));
    }

    #[test]
    fn number_formats_parse_back() {
        for x in [0.0, 1.5, -3.25e9, 123456789.0] {
            let v = parse(&number(x)).expect("formatted number parses");
            assert_eq!(v.as_f64(), Some(x));
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_rejected() {
        number(f64::NAN);
    }
}
